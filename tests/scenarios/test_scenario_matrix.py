"""The differential fault matrix for the scenario axis.

Two guarantees, swept over every registered algorithm × both port
models:

* **No-op safety** — a trial carrying ``scenario=None``, the registered
  ``"none"`` spec, or any zero-rate spec (``"faults-zero"``,
  ``"dyn-zero"``, a custom all-zero :class:`ScenarioSpec`) produces
  records byte-identical on the JSON export surface to both a
  scenario-free run of today's engine and the frozen pre-refactor
  oracle :func:`repro.runtime.reference.reference_run_trials` (which
  predates — and knows nothing of — scenarios).
* **Graceful degradation** — every *active* registered scenario yields
  a defined outcome per trial: the agents meet, the round budget runs
  out, or the run fails with a clean :class:`ProtocolError`.  Never an
  unhandled exception, whatever the mutators do to the world.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.core.api import ALGORITHMS
from repro.core.constants import Constants
from repro.errors import ProtocolError, ScenarioError
from repro.experiments.harness import run_trial, run_trials
from repro.experiments.results_io import record_to_jsonable
from repro.graphs.generators import random_graph_with_min_degree
from repro.graphs.ports import PortLabeling, PortModel
from repro.runtime.reference import reference_run_trials
from repro.scenarios import SCENARIOS, ScenarioSpec, active_scenario, resolve_scenario

NOOP_SCENARIOS = [None, "none", "faults-zero", "dyn-zero"]
ACTIVE_SCENARIOS = sorted(n for n, s in SCENARIOS.items() if not s.is_noop)
PORT_MODELS = [PortModel.KT1, PortModel.KT0]


def _record_bytes(records) -> bytes:
    return b"\n".join(
        json.dumps(record_to_jsonable(r), sort_keys=True).encode()
        for r in records
    )


def _instance(algorithm: str, port_model: PortModel):
    rng = random.Random(f"scenario-matrix:{algorithm}:{port_model}")
    graph = random_graph_with_min_degree(60, 12, rng)
    labeling = (
        PortLabeling(graph, rng=rng) if port_model is PortModel.KT0 else None
    )
    return graph, labeling


class TestNoopByteIdentity:
    """No-op scenarios leave the JSON export surface byte-identical."""

    @pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
    @pytest.mark.parametrize("port_model", PORT_MODELS)
    def test_matrix_matches_engine_and_frozen_oracle(self, algorithm, port_model):
        graph, labeling = _instance(algorithm, port_model)
        seeds = [0, 2, 5]
        kwargs = dict(
            constants=Constants.testing(),
            port_model=port_model,
            labeling=labeling,
            max_rounds=20_000,
        )
        try:
            baseline = run_trials(graph, algorithm, seeds, **kwargs)
            failed = None
        except ProtocolError as error:
            baseline, failed = None, error
        if failed is not None:
            # KT1-only algorithms must raise identically under a no-op
            # scenario — the scenario axis may not mask the error.
            for scenario in NOOP_SCENARIOS:
                with pytest.raises(ProtocolError) as info:
                    run_trials(graph, algorithm, seeds, scenario=scenario, **kwargs)
                assert str(info.value) == str(failed)
            return
        oracle = reference_run_trials(graph, algorithm, seeds, **kwargs)
        assert _record_bytes(baseline) == _record_bytes(oracle)
        for scenario in NOOP_SCENARIOS:
            routed = run_trials(graph, algorithm, seeds, scenario=scenario, **kwargs)
            assert _record_bytes(routed) == _record_bytes(oracle), (
                f"{algorithm}/{port_model}: no-op scenario {scenario!r} "
                "changed the records"
            )
            assert all(r.scenario is None for r in routed)

    def test_custom_zero_rate_spec_is_noop(self):
        graph, _ = _instance("random-walk", PortModel.KT1)
        seeds = [1, 4]
        spec = ScenarioSpec(name="my-quiet-world")
        assert spec.is_noop
        assert active_scenario(spec) is None
        base = run_trials(graph, "random-walk", seeds, max_rounds=500)
        quiet = run_trials(graph, "random-walk", seeds, scenario=spec, max_rounds=500)
        assert _record_bytes(base) == _record_bytes(quiet)

    def test_per_trial_noop_matches_batch(self):
        graph, _ = _instance("trivial", PortModel.KT1)
        batch = run_trials(graph, "trivial", [0, 1], scenario="none")
        singles = [
            run_trial(graph, "trivial", seed, scenario=None) for seed in (0, 1)
        ]
        assert _record_bytes(batch) == _record_bytes(singles)


class TestActiveScenariosGraceful:
    """Nonzero rates: met, budget exhausted, or a clean ProtocolError."""

    @pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
    @pytest.mark.parametrize("port_model", PORT_MODELS)
    def test_matrix_outcomes_are_defined(self, algorithm, port_model):
        graph, labeling = _instance(algorithm, port_model)
        kwargs = dict(
            constants=Constants.testing(),
            port_model=port_model,
            labeling=labeling,
            max_rounds=5_000,
        )
        for name in ACTIVE_SCENARIOS:
            for seed in (0, 1):
                try:
                    record = run_trial(
                        graph, algorithm, seed, scenario=name, **kwargs
                    )
                except ProtocolError:
                    continue  # the graceful failure mode
                assert record.scenario == name
                assert isinstance(record.met, bool)
                assert record.rounds <= 5_000

    @pytest.mark.parametrize("port_model", PORT_MODELS)
    def test_batched_active_runs_match_per_trial(self, port_model):
        """Engine reuse across seeds may not leak scenario state."""
        graph, labeling = _instance("random-walk", port_model)
        seeds = [0, 1, 2, 3]
        for name in ACTIVE_SCENARIOS:
            batch = run_trials(
                graph, "random-walk", seeds, scenario=name,
                port_model=port_model, labeling=labeling, max_rounds=800,
            )
            singles = [
                run_trial(
                    graph, "random-walk", seed, scenario=name,
                    port_model=port_model, labeling=labeling, max_rounds=800,
                )
                for seed in seeds
            ]
            assert _record_bytes(batch) == _record_bytes(singles), (
                f"{name}/{port_model}: batched records diverged"
            )

    def test_shared_plan_is_untouched_after_churn(self):
        """A memoized plan hosting a churn batch stays pristine."""
        from repro.runtime.plan import ExecutionPlan

        graph, _ = _instance("random-walk", PortModel.KT1)
        plan = ExecutionPlan.compile(graph)
        before = [tuple(row) for row in plan.nbr_ids]
        benign_before = run_trials(
            graph, "random-walk", [7, 8], plan=plan, max_rounds=600
        )
        run_trials(
            graph, "random-walk", [0, 1, 2], plan=plan,
            scenario="adversarial-churn", max_rounds=600,
        )
        assert [tuple(row) for row in plan.nbr_ids] == before
        benign_after = run_trials(
            graph, "random-walk", [7, 8], plan=plan, max_rounds=600
        )
        assert _record_bytes(benign_before) == _record_bytes(benign_after)


class TestScenarioSurface:
    """Spec resolution, validation, and the record's scenario field."""

    def test_registry_contains_zero_and_nonzero_specs(self):
        assert SCENARIOS["none"].is_noop
        assert SCENARIOS["faults-zero"].is_noop
        assert SCENARIOS["dyn-zero"].is_noop
        assert ACTIVE_SCENARIOS, "registry must ship active scenarios"

    def test_unknown_scenario_name_raises(self):
        with pytest.raises(ScenarioError):
            resolve_scenario("no-such-world")

    def test_invalid_rates_raise(self):
        with pytest.raises(ScenarioError):
            ScenarioSpec(name="bad", churn_rate=1.5)
        with pytest.raises(ScenarioError):
            ScenarioSpec(name="bad", crash_rate=-0.1)
        with pytest.raises(ScenarioError):
            ScenarioSpec(name="bad", respawn="reincarnate")

    def test_record_scenario_field_round_trips(self):
        from repro.experiments.results_io import (
            pack_record_batch,
            record_from_jsonable,
            unpack_record_batch,
        )

        graph, _ = _instance("random-walk", PortModel.KT1)
        records = run_trials(
            graph, "random-walk", [0, 1], scenario="edge-churn", max_rounds=800
        )
        assert all(r.scenario == "edge-churn" for r in records)
        unpacked = unpack_record_batch(pack_record_batch(records))
        assert unpacked == records
        for record in records:
            payload = record_to_jsonable(record)
            assert payload["scenario"] == "edge-churn"
            assert record_from_jsonable(payload) == record
