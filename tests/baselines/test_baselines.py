"""Tests for the four baseline algorithms."""

from __future__ import annotations

import math
import random

import pytest

from repro.core.api import rendezvous
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    path_graph,
    random_graph_with_min_degree,
    star_graph,
)


class TestTrivialProbe:
    def test_meets_within_two_delta(self, dense_graph_small):
        g = dense_graph_small
        for seed in range(5):
            result = rendezvous(g, "trivial", seed=seed)
            assert result.met
            assert result.rounds <= 2 * g.max_degree + 2

    def test_on_star_center_start(self):
        g = star_graph(50, center=0)
        result = rendezvous(g, "trivial", start_a=0, start_b=7, seed=0)
        assert result.met
        assert result.meeting_vertex == 7

    def test_leaf_start_finds_center(self):
        g = star_graph(50, center=0)
        result = rendezvous(g, "trivial", start_a=7, start_b=0, seed=0)
        assert result.met
        assert result.rounds <= 2

    def test_deterministic_variant(self):
        from repro.baselines.trivial import trivial_programs
        from repro.runtime.scheduler import SyncScheduler

        g = cycle_graph(12)
        prog_a, prog_b = trivial_programs(randomize=False)
        result = SyncScheduler(g, prog_a, prog_b, 0, 1, max_rounds=100).run()
        assert result.met
        assert result.rounds <= 4


class TestDfsExplorer:
    def test_meets_everywhere(self):
        for n in (10, 40):
            g = cycle_graph(n)
            result = rendezvous(g, "explore", start_a=0, start_b=n // 2, seed=0,
                                check_instance=False) if False else rendezvous(
                g, "explore", start_a=0, start_b=1, seed=0)
            assert result.met

    def test_bounded_by_2n(self, dense_graph_small):
        g = dense_graph_small
        result = rendezvous(g, "explore", seed=0)
        assert result.met
        assert result.rounds <= 2 * g.n

    def test_full_traversal_without_partner(self):
        from repro.baselines.explore import DfsExplorerA
        from repro.runtime.single import run_single_agent

        g = random_graph_with_min_degree(60, 8, random.Random(0))
        program = DfsExplorerA()
        rec = run_single_agent(program, g, g.vertices[0], rounds=10**6)
        assert rec.visited_set == frozenset(g.vertices)
        assert rec.rounds <= 2 * (g.n - 1)
        assert program.report()["vertices_discovered"] == g.n

    def test_randomized_variant_still_complete(self):
        from repro.baselines.explore import DfsExplorerA
        from repro.runtime.single import run_single_agent

        g = cycle_graph(30)
        rec = run_single_agent(DfsExplorerA(randomize=True), g, 0, rounds=10**5)
        assert rec.visited_set == frozenset(g.vertices)


class TestRandomWalk:
    def test_meets_on_small_graphs(self):
        g = complete_graph(12)
        result = rendezvous(g, "random-walk", seed=0, max_rounds=100_000)
        assert result.met

    def test_laziness_validation(self):
        from repro.baselines.random_walk import RandomWalker

        with pytest.raises(ValueError):
            RandomWalker(laziness=1.0)
        with pytest.raises(ValueError):
            RandomWalker(laziness=-0.1)

    def test_lazy_walk_meets_on_even_cycle(self):
        """Laziness breaks the parity obstruction on bipartite graphs."""
        g = cycle_graph(8)
        result = rendezvous(g, "random-walk", start_a=0, start_b=1,
                            seed=1, max_rounds=200_000)
        assert result.met

    def test_kt0_compatible(self):
        from repro.graphs.ports import PortModel

        g = complete_graph(10)
        result = rendezvous(
            g, "random-walk", seed=2, max_rounds=100_000,
            port_model=PortModel.KT0,
        )
        assert result.met


class TestAndersonWeber:
    def test_meets_on_complete_graphs(self):
        for n in (16, 64, 144):
            g = complete_graph(n)
            result = rendezvous(g, "anderson-weber", seed=n)
            assert result.met

    def test_sqrt_n_scaling(self):
        """Mean rounds grow roughly like sqrt(n) (loose sanity check)."""
        means = []
        for n in (64, 1024):
            rounds = [
                rendezvous(complete_graph(n), "anderson-weber", seed=s).rounds
                for s in range(8)
            ]
            means.append(sum(rounds) / len(rounds))
        ratio = means[1] / means[0]
        # sqrt(1024/64) = 4; allow generous noise either side.
        assert 1.5 <= ratio <= 12.0

    def test_rejects_non_complete_neighborhood(self):
        """On non-complete graphs the probe set is just N⁺(v0) — the
        algorithm still runs but only guarantees [6]'s bound on K_n."""
        g = random_graph_with_min_degree(60, 20, random.Random(0))
        result = rendezvous(g, "anderson-weber", seed=0, max_rounds=200_000)
        # b's marks stay within N⁺(v0_b) which intersects N⁺(v0_a): met.
        assert result.met
