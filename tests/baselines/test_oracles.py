"""Tests for the oracle-equipped related-work baselines."""

from __future__ import annotations

import random

import pytest

from repro.baselines.oracles import (
    CommonMapAgent,
    run_with_distance_oracle,
    run_with_map_oracle,
)
from repro.graphs.generators import (
    cycle_graph,
    path_graph,
    random_graph_with_min_degree,
)


@pytest.fixture(scope="module")
def graph():
    return random_graph_with_min_degree(150, 35, random.Random("oracles"))


def pair_at_distance(graph, distance):
    start = graph.vertices[-1]
    partner = next(
        (v for v in graph.vertices if graph.distance(start, v) == distance), None
    )
    if partner is None:
        pytest.skip(f"no pair at distance {distance}")
    return start, partner


class TestCommonMap:
    def test_meets_within_diameter(self, graph):
        start_a, start_b = pair_at_distance(graph, 1)
        result = run_with_map_oracle(graph, start_a, start_b)
        assert result.met
        # Dense random graphs have diameter 2-3: generous cap.
        assert result.rounds <= 8

    def test_meets_at_canonical_vertex_or_en_route(self, graph):
        start_a, start_b = pair_at_distance(graph, 2)
        result = run_with_map_oracle(graph, start_a, start_b)
        assert result.met

    def test_on_a_long_cycle(self):
        g = cycle_graph(40)
        result = run_with_map_oracle(g, 10, 30)
        assert result.met
        # Both walk to vertex 0: max eccentricity contribution <= n/2.
        assert result.rounds <= 21

    def test_path_lengths_reported(self, graph):
        start_a, start_b = pair_at_distance(graph, 1)
        agent = CommonMapAgent(graph)
        from repro.baselines.oracles import SyncScheduler

        scheduler = SyncScheduler(
            graph, agent, CommonMapAgent(graph), start_a, start_b,
            whiteboards=False, max_rounds=100,
        )
        scheduler.run()
        assert agent.report()["path_length"] == graph.distance(
            start_a, graph.vertices[0]
        )


class TestDistanceOracle:
    def test_meets_at_distance_one(self, graph):
        start_a, start_b = pair_at_distance(graph, 1)
        result = run_with_distance_oracle(graph, start_a, start_b)
        assert result.met
        assert result.rounds <= 4 * graph.max_degree

    def test_meets_at_distance_two(self, graph):
        start_a, start_b = pair_at_distance(graph, 2)
        result = run_with_distance_oracle(graph, start_a, start_b)
        assert result.met
        assert result.rounds <= 8 * graph.max_degree

    def test_meets_on_a_path(self):
        """Gradient descent walks straight down a path graph."""
        g = path_graph(20)
        result = run_with_distance_oracle(g, 0, 19)
        assert result.met
        # Each level costs at most 2*deg <= 4 rounds plus the step.
        assert result.rounds <= 6 * 19

    def test_probe_count_bounded(self, graph):
        start_a, start_b = pair_at_distance(graph, 2)
        result = run_with_distance_oracle(graph, start_a, start_b)
        assert result.met
        probes = result.reports["a"]["probes"]
        assert probes <= 2 * 2 * graph.max_degree  # O(Delta * d)

    def test_deterministic_given_seed(self, graph):
        start_a, start_b = pair_at_distance(graph, 2)
        r1 = run_with_distance_oracle(graph, start_a, start_b, seed=4)
        r2 = run_with_distance_oracle(graph, start_a, start_b, seed=4)
        assert r1.rounds == r2.rounds
