"""The chaos layer's own mechanics: schedules, streams, proxy plumbing.

These are the *unit* tests — schedule validation, per-stream fault
transforms against in-memory byte sinks, partition admission logic,
and the proxy forwarding real bytes through an echo server.  The
end-to-end soak (full broker + workers + faults, byte-identity
against a serial sweep) lives in ``test_chaos_soak.py``.
"""

from __future__ import annotations

import socket
import threading

import pytest

from repro.errors import ChaosError, ReproError, ServiceError
from repro.service.chaos import (
    FAULT_KINDS,
    ChaosProxy,
    FaultSchedule,
    _ChaosCore,
    _StreamChaos,
    arm,
    random_schedule,
    wrap_socket,
)


def schedule(*faults, seed=0) -> FaultSchedule:
    return FaultSchedule.from_payload({"seed": seed, "faults": list(faults)})


def run_stream(sched, data, conn=0, direction="up", chunks=None):
    """Push ``data`` through one stream; returns (forwarded, severed)."""
    stream = _StreamChaos(arm(sched), conn, direction)
    out: list[bytes] = []
    kept = True
    for piece in (chunks if chunks is not None else [data]):
        kept = stream.transform(piece, out.append, sleep=lambda _s: None)
        if not kept:
            break
    return b"".join(out), not kept


class TestScheduleParsing:
    def test_round_trips_through_json(self):
        sched = schedule(
            {"kind": "delay", "conn": 0, "direction": "up", "ms": 5, "op": 1},
            {"kind": "slow-drip", "bytes": 64, "chunk": 3, "ms": 1},
            {"kind": "truncate", "conn": [1, 2], "after_bytes": 100},
            {"kind": "corrupt", "at_byte": 17, "mask": 0x40},
            {"kind": "drop", "direction": "down", "after_ops": 2},
            {"kind": "partition", "at_conn": 3, "refuse": 2, "heal_ms": 50},
            seed=42,
        )
        assert FaultSchedule.from_json(sched.to_json()) == sched
        assert FaultSchedule.from_payload(sched.describe()) == sched

    def test_errors_name_the_rule_position(self):
        good = {"kind": "delay", "ms": 5}
        cases = [
            ("not-a-dict", ["nope"]),
            ("unknown kind", [{"kind": "meteor"}]),
            ("unknown key", [{"kind": "delay", "ms": 5, "meteor": 1}]),
            ("delay without ms", [{"kind": "delay"}]),
            ("slow-drip without bytes", [{"kind": "slow-drip"}]),
            ("truncate without after_bytes", [{"kind": "truncate"}]),
            ("corrupt without at_byte", [{"kind": "corrupt"}]),
            ("corrupt zero mask", [{"kind": "corrupt", "at_byte": 0, "mask": 0}]),
            ("drop without after_ops", [{"kind": "drop"}]),
            ("partition without healing",
             [{"kind": "partition", "at_conn": 1}]),
            ("bad conn", [{"kind": "delay", "ms": 5, "conn": "two"}]),
            ("bad direction", [{"kind": "delay", "ms": 5, "direction": "left"}]),
        ]
        for label, faults in cases:
            with pytest.raises(ChaosError, match=r"rule #1"):
                schedule(good, *faults)
            assert label  # silences the unused-variable linter

    def test_chaos_errors_are_typed_service_errors(self):
        with pytest.raises(ServiceError):
            FaultSchedule.from_json("{not json")
        with pytest.raises(ReproError, match="version"):
            FaultSchedule.from_payload({"version": 9, "faults": []})
        with pytest.raises(ChaosError, match="unknown fault schedule key"):
            FaultSchedule.from_payload({"faults": [], "extra": 1})

    def test_from_file_and_missing_file(self, tmp_path):
        path = tmp_path / "sched.json"
        sched = schedule({"kind": "delay", "ms": 5}, seed=3)
        path.write_text(sched.to_json(), encoding="utf-8")
        assert FaultSchedule.from_file(path) == sched
        with pytest.raises(ChaosError, match="cannot read"):
            FaultSchedule.from_file(tmp_path / "absent.json")

    def test_random_schedule_is_deterministic_in_its_seed(self):
        assert random_schedule(1234) == random_schedule(1234)
        assert random_schedule(1234) != random_schedule(1235)
        # Every kind must be reachable by the fuzzer.
        seen = set()
        for seed in range(80):
            seen.update(r.kind for r in random_schedule(seed).rules)
        assert seen == set(FAULT_KINDS)


class TestStreamTransforms:
    def test_clean_stream_is_identity(self):
        data = bytes(range(256))
        out, severed = run_stream(schedule(), data)
        assert (out, severed) == (data, False)

    def test_corrupt_flips_exactly_one_byte_at_the_offset(self):
        out, severed = run_stream(
            schedule({"kind": "corrupt", "at_byte": 10, "mask": 0xFF}),
            bytes(32),
            chunks=[bytes(8), bytes(8), bytes(16)],  # offset spans chunks
        )
        assert not severed
        assert out[10] == 0xFF
        assert out[:10] == bytes(10) and out[11:] == bytes(21)

    def test_truncate_forwards_then_severs(self):
        out, severed = run_stream(
            schedule({"kind": "truncate", "after_bytes": 5}), b"abcdefghij"
        )
        assert (out, severed) == (b"abcde", True)

    def test_drop_blackholes_after_n_ops(self):
        out, severed = run_stream(
            schedule({"kind": "drop", "after_ops": 2}),
            None,
            chunks=[b"one", b"two", b"three", b"four"],
        )
        assert (out, severed) == (b"onetwo", False)

    def test_slow_drip_preserves_bytes_exactly(self):
        data = bytes(range(100))
        out, severed = run_stream(
            schedule({"kind": "slow-drip", "bytes": 24, "chunk": 5, "ms": 0}),
            data,
        )
        assert (out, severed) == (data, False)

    def test_rules_only_fire_on_matching_conn_and_direction(self):
        sched = schedule(
            {"kind": "truncate", "after_bytes": 0, "conn": 1, "direction": "up"}
        )
        out, severed = run_stream(sched, b"data", conn=0, direction="up")
        assert (out, severed) == (b"data", False)
        out, severed = run_stream(sched, b"data", conn=1, direction="down")
        assert (out, severed) == (b"data", False)
        out, severed = run_stream(sched, b"data", conn=1, direction="up")
        assert (out, severed) == (b"", True)

    def test_fired_faults_land_in_the_event_log_with_positions(self):
        core = arm(schedule(
            {"kind": "delay", "ms": 1},
            {"kind": "truncate", "after_bytes": 2},
        ))
        stream = _StreamChaos(core, 0, "up")
        stream.transform(b"abcd", lambda _b: None, sleep=lambda _s: None)
        positions = [(e["rule"], e["kind"]) for e in core.events()]
        assert positions == [(0, "delay"), (1, "truncate")]


class TestPartitions:
    def test_trigger_severs_refuses_then_heals(self):
        core = arm(schedule({"kind": "partition", "at_conn": 2, "refuse": 2}))
        severed: list[int] = []
        admitted = []
        for index in range(7):
            got, refused = core.admit()
            assert got == index
            if not refused:
                core.register(index, lambda i=index: severed.append(i))
            admitted.append(not refused)
        # 0, 1 admitted; 2 triggers (severing 0 and 1); 3, 4 refused;
        # 5, 6 healed.
        assert admitted == [True, True, False, False, False, True, True]
        assert severed == [0, 1]

    def test_wrap_socket_refusal_closes_the_socket(self):
        core = arm(schedule(
            {"kind": "partition", "at_conn": 0, "refuse": 0, "heal_ms": 1}
        ))
        a, b = socket.socketpair()
        try:
            assert wrap_socket(a, core) is None
            assert a.fileno() == -1  # closed by the refusal
        finally:
            b.close()

    def test_core_without_partitions_admits_everything(self):
        core = _ChaosCore(schedule({"kind": "delay", "ms": 1}))
        assert [core.admit() for _ in range(3)] == [
            (0, False), (1, False), (2, False),
        ]


class _EchoServer:
    """A TCP echo upstream for proxy tests."""

    def __init__(self) -> None:
        self.listener = socket.create_server(("127.0.0.1", 0))
        self.address = self.listener.getsockname()[:2]
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self) -> None:
        while True:
            try:
                conn, _addr = self.listener.accept()
            except OSError:
                return
            def pump(conn=conn):
                try:
                    while data := conn.recv(65536):
                        conn.sendall(data)
                except OSError:
                    pass
                finally:
                    conn.close()
            threading.Thread(target=pump, daemon=True).start()

    def close(self) -> None:
        self.listener.close()


@pytest.fixture()
def echo():
    server = _EchoServer()
    yield server
    server.close()


class TestChaosProxy:
    def test_clean_schedule_is_a_transparent_pipe(self, echo):
        with ChaosProxy(echo.address, schedule()) as proxy:
            with socket.create_connection(proxy.address, timeout=5.0) as sock:
                sock.sendall(b"ping" * 1000)
                got = b""
                while len(got) < 4000:
                    got += sock.recv(65536)
        assert got == b"ping" * 1000
        assert proxy.events() == []

    def test_corrupt_rule_flips_the_byte_end_to_end(self, echo):
        sched = schedule({"kind": "corrupt", "at_byte": 2, "mask": 0x01,
                          "direction": "up"})
        with ChaosProxy(echo.address, sched) as proxy:
            with socket.create_connection(proxy.address, timeout=5.0) as sock:
                sock.sendall(b"AAAA")
                got = sock.recv(4)
        assert got == b"AA\x40A"  # 0x41 ^ 0x01
        assert [e["kind"] for e in proxy.events()] == ["corrupt"]

    def test_truncate_rule_severs_the_link(self, echo):
        sched = schedule({"kind": "truncate", "after_bytes": 2,
                          "direction": "up"})
        with ChaosProxy(echo.address, sched) as proxy:
            with socket.create_connection(proxy.address, timeout=5.0) as sock:
                sock.settimeout(5.0)
                sock.sendall(b"ABCDEF")
                got = b""
                try:
                    while chunk := sock.recv(16):
                        got += chunk
                except OSError:
                    pass  # the sever's RST can beat the echoed bytes back
        # At most the 2 surviving bytes ever reach the client, and the
        # event log pins the sever on the truncate rule.
        assert b"AB".startswith(got)
        assert [e["kind"] for e in proxy.events()] == ["truncate"]

    def test_partition_refuses_then_heals(self, echo):
        sched = schedule({"kind": "partition", "at_conn": 1, "refuse": 1})
        with ChaosProxy(echo.address, sched) as proxy:
            def roundtrip() -> bytes:
                with socket.create_connection(proxy.address, timeout=5.0) as s:
                    s.settimeout(5.0)
                    s.sendall(b"hi")
                    try:
                        return s.recv(2)
                    except OSError:
                        return b""
            assert roundtrip() == b"hi"   # conn 0: clean
            assert roundtrip() == b""     # conn 1: partition trigger
            assert roundtrip() == b""     # conn 2: refused
            assert roundtrip() == b"hi"   # conn 3: healed
        kinds = [e["kind"] for e in proxy.events()]
        assert kinds.count("partition") == 2

    def test_start_twice_is_a_chaos_error(self, echo):
        proxy = ChaosProxy(echo.address, schedule())
        proxy.start()
        try:
            with pytest.raises(ChaosError, match="already started"):
                proxy.start()
        finally:
            proxy.stop()

    def test_address_before_start_is_a_chaos_error(self, echo):
        with pytest.raises(ChaosError, match="not running"):
            ChaosProxy(echo.address, schedule()).address
