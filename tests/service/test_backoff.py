"""The shared retry policy: deterministic pacing, typed give-ups.

Everything runs against an injected fake clock/sleep, so these tests
exercise real deadline arithmetic without real waiting.
"""

from __future__ import annotations

import random

import pytest

from repro.errors import ReproError, ServiceError
from repro.service.backoff import DEFAULT_POLICY, BackoffPolicy


class FakeTime:
    """A monotonic clock whose sleep() advances it — no real waiting."""

    def __init__(self) -> None:
        self.now = 100.0
        self.slept: list[float] = []

    def clock(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        self.slept.append(seconds)
        self.now += seconds


class TestPolicy:
    def test_preview_is_capped_exponential(self):
        policy = BackoffPolicy(initial=0.1, factor=2.0, cap=1.0, jitter=0.0)
        assert [round(d, 3) for d in policy.preview(6)] == [
            0.1, 0.2, 0.4, 0.8, 1.0, 1.0,
        ]

    def test_malformed_policies_are_typed_errors(self):
        with pytest.raises(ServiceError, match="malformed backoff policy"):
            BackoffPolicy(initial=0.0)
        with pytest.raises(ServiceError, match="malformed backoff policy"):
            BackoffPolicy(factor=0.5)
        with pytest.raises(ServiceError, match="malformed backoff policy"):
            BackoffPolicy(initial=2.0, cap=1.0)
        with pytest.raises(ServiceError, match="jitter"):
            BackoffPolicy(jitter=1.0)

    def test_default_policy_spreads_a_fleet(self):
        # Two sessions with different RNG seeds must not share a beat:
        # that is the thundering-herd fix in one assertion.
        fake_a, fake_b = FakeTime(), FakeTime()
        for fake, seed in ((fake_a, 1), (fake_b, 2)):
            session = DEFAULT_POLICY.session(
                10.0, "dial", clock=fake.clock, sleep=fake.sleep,
                rng=random.Random(seed),
            )
            for _ in range(4):
                session.wait(OSError("refused"))
        assert fake_a.slept != fake_b.slept


class TestSession:
    def test_unjittered_session_sleeps_the_preview(self):
        policy = BackoffPolicy(initial=0.1, factor=2.0, cap=0.4, jitter=0.0)
        fake = FakeTime()
        session = policy.session(
            60.0, "dial", clock=fake.clock, sleep=fake.sleep
        )
        for _ in range(5):
            session.wait(OSError("refused"))
        assert [round(s, 3) for s in fake.slept] == [0.1, 0.2, 0.4, 0.4, 0.4]
        assert session.attempts == 5

    def test_jitter_shrinks_but_never_stretches_delays(self):
        policy = BackoffPolicy(initial=0.1, factor=2.0, cap=1.0, jitter=0.5)
        fake = FakeTime()
        session = policy.session(
            60.0, "dial", clock=fake.clock, sleep=fake.sleep,
            rng=random.Random(7),
        )
        for _ in range(6):
            session.wait(OSError("refused"))
        for slept, base in zip(fake.slept, policy.preview(6)):
            assert base / 2 <= slept <= base

    def test_final_sleep_is_clipped_to_the_deadline(self):
        policy = BackoffPolicy(initial=0.4, factor=2.0, cap=5.0, jitter=0.0)
        fake = FakeTime()
        session = policy.session(
            1.0, "dial", clock=fake.clock, sleep=fake.sleep
        )
        session.wait(OSError("refused"))
        session.wait(OSError("refused"))
        # 0.4, then 0.8 clipped to the remaining 0.6; the budget is now
        # spent, so the next wait gives up instead of sleeping past it.
        assert [round(s, 3) for s in fake.slept] == [0.4, 0.6]
        with pytest.raises(ServiceError, match="gave up after 3 attempt"):
            session.wait(OSError("refused"))

    def test_give_up_is_a_typed_error_naming_everything(self):
        fake = FakeTime()
        session = BackoffPolicy(jitter=0.0).session(
            0.5, "cannot reach broker at 10.0.0.1:7641",
            clock=fake.clock, sleep=fake.sleep,
        )
        with pytest.raises(ServiceError) as excinfo:
            while True:
                session.wait(OSError("connection refused"))
        message = str(excinfo.value)
        assert "cannot reach broker at 10.0.0.1:7641" in message
        assert "attempt(s)" in message
        assert "connection refused" in message
        assert isinstance(excinfo.value, ReproError)

    def test_zero_budget_gives_up_on_first_wait(self):
        fake = FakeTime()
        session = DEFAULT_POLICY.session(
            0.0, "dial", clock=fake.clock, sleep=fake.sleep
        )
        with pytest.raises(ServiceError, match="gave up after 1 attempt"):
            session.wait("boom")
        assert fake.slept == []

    def test_remaining_and_expired_track_the_clock(self):
        fake = FakeTime()
        session = DEFAULT_POLICY.session(
            2.0, "dial", clock=fake.clock, sleep=fake.sleep
        )
        assert session.remaining() == pytest.approx(2.0)
        assert not session.expired()
        fake.now += 3.0
        assert session.remaining() == 0.0
        assert session.expired()
