"""The byte-identity soak: seeded fault schedules through real sweeps.

Every test here drives a full broker + 2-worker-host fleet with the
workers dialing through a :class:`ChaosProxy`, then holds the service
to the PR 9 contract *under fault*: a submission either returns
records byte-identical to a serial sweep (and a cache with exactly
one durable record per grid point — nothing lost, nothing duplicated)
or raises a typed :class:`~repro.errors.ServiceError`.  It never
hangs (a watchdog bounds each submission) and it never merges wrong
bytes (the frame CRC turns in-flight corruption into a redial).

The 32 curated schedules sweep the whole taxonomy — delay, slow-drip,
truncate (both directions), corrupt (both directions), drop
(blackhole), partition with refusal- and time-based healing — and one
extra randomized entry fuzzes a fresh seed per run, printing it in
every failure message so ``random_schedule(seed)`` replays the exact
perturbation.
"""

from __future__ import annotations

import json
import random
import threading
import time

import pytest

from repro.errors import ServiceError
from repro.experiments.cache import ResultCache
from repro.experiments.parallel import SweepSpec, run_sweep
from repro.experiments.warehouse import SweepWarehouse, WarehouseCache
from repro.service import Broker, broker_status, run_worker, submit_sweep
from repro.service.chaos import ChaosProxy, FaultSchedule, random_schedule

#: One tiny grid shared by every soak entry (6 trials, 3 units of 2).
SPEC = SweepSpec(
    name="chaos-soak",
    families=("complete",),
    ns=(16,),
    deltas=("n^0.75",),
    algorithms=("trivial",),
    seeds=tuple(range(6)),
    preset="testing",
)

#: Hard per-test bound on one faulted submission: generous against a
#: slow CI box, far below pytest's patience — a hang fails, fast.
WATCHDOG = 75.0


@pytest.fixture(scope="module")
def serial():
    """The ground truth every faulted run must reproduce byte-for-byte."""
    return run_sweep(SPEC, workers=1, fabric=False)


def _serial_bytes(serial, tmp_path) -> bytes:
    path = serial.write_jsonl(tmp_path / "serial-ref.jsonl")
    return path.read_bytes()


def _worker_host(address) -> None:
    try:
        run_worker(address, max_units=None, reconnect=8.0, op_deadline=2.0)
    except ServiceError:
        # This host lost the broker past its redial budget; the
        # surviving host (or a lease re-queue) finishes the job.
        pass


def _submit_watchdogged(label: str, address) -> dict:
    box: dict = {}

    def target() -> None:
        try:
            box["result"] = submit_sweep(address, SPEC, retry=10.0, timeout=20.0)
        except Exception as error:  # noqa: BLE001 - outcome checked below
            box["error"] = error

    thread = threading.Thread(target=target, daemon=True)
    thread.start()
    thread.join(WATCHDOG)
    if thread.is_alive():
        pytest.fail(
            f"{label}: submission hung past {WATCHDOG}s — "
            f"the never-hangs guarantee is broken"
        )
    return box


def _assert_cache_exact(label: str, cache_dir, warehouse: bool) -> None:
    """Exactly one durable record per grid point: none lost, none doubled."""
    total = len(SPEC.points())
    if warehouse:
        cache = WarehouseCache(cache_dir, SPEC.spec_hash())
        indexed = dict(cache.iter_indexed())
        assert sorted(indexed) == list(range(total)), (
            f"{label}: warehouse cache holds grid points "
            f"{sorted(indexed)}, want 0..{total - 1}"
        )
        rows = sum(1 for _ in SweepWarehouse(cache.path).iter_records())
        assert rows == total, (
            f"{label}: warehouse holds {rows} row(s) for {total} grid "
            f"point(s) — a duplicate merge reached the writer"
        )
    else:
        cache = ResultCache(cache_dir, SPEC.spec_hash())
        lines = [
            line
            for line in cache.path.read_text(encoding="utf-8").splitlines()
            if line.strip()
        ]
        keys = [json.loads(line)["key"] for line in lines]
        assert len(keys) == total, (
            f"{label}: cache holds {len(keys)} line(s) for {total} grid "
            f"point(s) — a record was lost or duplicated"
        )
        assert len(set(keys)) == total, f"{label}: duplicate cache keys"


def _run_schedule(label, schedule, tmp_path, serial, *, warehouse):
    """One soak iteration; returns True when the sweep merged cleanly."""
    cache_dir = tmp_path / "cache"
    with Broker(
        cache_dir, unit_size=2, lease_timeout=1.0, warehouse=warehouse
    ) as broker:
        with ChaosProxy(broker.address, schedule) as proxy:
            for _ in range(2):
                threading.Thread(
                    target=_worker_host, args=(proxy.address,), daemon=True
                ).start()
            box = _submit_watchdogged(label, broker.address)
            events = proxy.events()
    assert broker.is_clean_shutdown, (
        f"{label}: broker did not shut down cleanly (events: {events})"
    )
    if "error" in box:
        assert isinstance(box["error"], ServiceError), (
            f"{label}: terminal failure must be a typed ServiceError, "
            f"got {type(box['error']).__name__}: {box['error']} "
            f"(events: {events})"
        )
        return False
    result = box["result"]
    assert result.records == serial.records, (
        f"{label}: merged records differ from the serial sweep "
        f"(events: {events})"
    )
    merged = result.write_jsonl(tmp_path / "merged.jsonl").read_bytes()
    assert merged == _serial_bytes(serial, tmp_path), (
        f"{label}: merged JSONL is not byte-identical to serial"
    )
    _assert_cache_exact(label, cache_dir, warehouse)
    return True


def _soak_entries() -> list[tuple[str, list[dict]]]:
    """32 curated schedules covering the whole fault taxonomy.

    Connections 0 and 1 are the two worker hosts' first dials; redials
    take fresh indices, so per-connection rules heal once the victim
    reconnects.  The partition trigger rides connection 1 (the second
    host's arrival) and heals by refusal count, by timer, or both.
    """
    entries: list[tuple[str, list[dict]]] = []
    for v in range(4):
        entries.append((f"delay-all-v{v}", [
            {"kind": "delay", "ms": [5, 15, 30, 50][v]},
        ]))
        entries.append((f"delay-one-op-v{v}", [
            {"kind": "delay", "ms": 25, "op": v % 3, "conn": [0, 1]},
        ]))
        entries.append((f"slow-drip-v{v}", [
            {"kind": "slow-drip", "conn": v % 2,
             "direction": ["up", "down"][v // 2],
             "bytes": [8, 16, 24, 48][v], "chunk": [1, 2, 3, 5][v], "ms": 1},
        ]))
        entries.append((f"truncate-up-v{v}", [
            {"kind": "truncate", "conn": v % 2, "direction": "up",
             "after_bytes": [1, 9, 40, 150][v]},
        ]))
        entries.append((f"truncate-down-v{v}", [
            {"kind": "truncate", "conn": v % 2, "direction": "down",
             "after_bytes": [0, 5, 17, 80][v]},
        ]))
        entries.append((f"corrupt-v{v}", [
            {"kind": "corrupt", "conn": v % 2,
             "direction": ["up", "down"][v % 2],
             "at_byte": [0, 7, 13, 60][v], "mask": [0xFF, 0x01, 0x80, 0x55][v]},
        ]))
        entries.append((f"drop-v{v}", [
            {"kind": "drop", "conn": v % 2,
             "direction": ["up", "down"][v // 2], "after_ops": v},
        ]))
        entries.append((f"partition-v{v}", [
            {"kind": "partition", "at_conn": 1, "refuse": [1, 2, 1, 0][v],
             **({"heal_ms": 400.0} if v >= 2 else {})},
        ]))
    return entries


_ENTRIES = _soak_entries()


class TestSeededSoak:
    @pytest.mark.parametrize(
        "index,name,faults",
        [(i, name, faults) for i, (name, faults) in enumerate(_ENTRIES)],
        ids=[name for name, _faults in _ENTRIES],
    )
    def test_schedule(self, tmp_path, serial, index, name, faults):
        schedule = FaultSchedule.from_payload({"seed": index, "faults": faults})
        warehouse = index % 2 == 1  # alternate both cache backends
        merged = _run_schedule(
            f"schedule {name}", schedule, tmp_path, serial,
            warehouse=warehouse,
        )
        # Every curated schedule heals, so the non-destructive kinds
        # must land the byte-identical success path, not just a typed
        # error: anything less means a delay alone can sink a sweep.
        if name.startswith(("delay", "slow-drip")):
            assert merged, f"schedule {name}: benign fault failed the sweep"

    def test_randomized_fuzz_schedule_reports_its_seed(self, tmp_path, serial):
        seed = random.SystemRandom().randrange(2**32)
        schedule = random_schedule(seed, conns=6, rules=3)
        label = (
            f"fuzz seed {seed} — rerun with "
            f"random_schedule({seed}, conns=6, rules=3): "
            f"{schedule.to_json()}"
        )
        _run_schedule(label, schedule, tmp_path, serial, warehouse=seed % 2 == 1)


class TestBrokerDeath:
    """Satellite: submit_sweep vs a broker that dies mid-sweep."""

    def test_mid_sweep_death_is_a_typed_error_within_bounds(self, tmp_path):
        broker = Broker(tmp_path / "cache", unit_size=2)
        broker.start()
        address = broker.address
        box: dict = {}

        def target() -> None:
            try:
                box["result"] = submit_sweep(address, SPEC, retry=3.0, timeout=10.0)
            except Exception as error:  # noqa: BLE001 - checked below
                box["error"] = error
            box["at"] = time.monotonic()

        thread = threading.Thread(target=target, daemon=True)
        thread.start()
        # No workers attached: the client is mid-sweep, riding heartbeats.
        deadline = time.monotonic() + 10.0
        while SPEC.spec_hash() not in broker_status(address, retry=2.0)["jobs"]:
            assert time.monotonic() < deadline, "job never registered"
            time.sleep(0.01)
        killed_at = time.monotonic()
        broker.stop()
        thread.join(15.0)
        assert not thread.is_alive(), "client hung past the broker's death"
        error = box.get("error")
        assert isinstance(error, ServiceError), f"got {box!r}"
        # "within `retry` seconds": the stop is announced (error frame or
        # reset), so the client needs nothing close to its full budget.
        assert box["at"] - killed_at < 10.0

    def test_resubmission_after_restart_is_all_cache(self, tmp_path, serial):
        with Broker(tmp_path / "cache", unit_size=2) as broker:
            threading.Thread(
                target=_worker_host, args=(broker.address,), daemon=True
            ).start()
            first = submit_sweep(broker.address, SPEC, timeout=30.0)
        assert first.records == serial.records
        # A fresh broker process on the same cache dir: the resubmitted
        # sweep must be served 100% from cache — no worker attached.
        with Broker(tmp_path / "cache", unit_size=2) as broker:
            again = submit_sweep(broker.address, SPEC, timeout=30.0)
        assert again.records == serial.records
        assert again.cached == len(SPEC.points())
        assert again.executed == 0
