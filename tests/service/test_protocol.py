"""Wire-protocol robustness: torn frames raise, they never hang or lie.

Every malformed stream the sweep service can meet — truncated frame,
oversized length prefix, garbage header, a peer that dies mid-frame —
must surface as a typed :class:`~repro.errors.WireError` from
``recv_frame``, because the broker's re-queue logic and the worker's
reconnect loop both key off that one exception.
"""

from __future__ import annotations

import dataclasses
import socket
import struct
import threading
import time
import zlib

import pytest

from repro.errors import ReproError, ServiceError, WireError
from repro.experiments.harness import repeat_trials
from repro.graphs.generators import complete_graph
from repro.service.protocol import (
    MAGIC,
    MAX_HEADER_BYTES,
    MAX_PAYLOAD_BYTES,
    decode_records,
    encode_records,
    format_address,
    parse_address,
    recv_frame,
    recv_message,
    send_frame,
    send_message,
)

_PROLOGUE = struct.Struct("<4sIQI")


def prologue(magic: bytes, header_len: int, payload_len: int,
             body: bytes = b"") -> bytes:
    """Hand-build a prologue; ``body`` is whatever the CRC should cover."""
    return _PROLOGUE.pack(magic, header_len, payload_len, zlib.crc32(body))


@pytest.fixture()
def pair():
    a, b = socket.socketpair()
    yield a, b
    a.close()
    b.close()


def sample_records():
    return repeat_trials(complete_graph(16), "trivial", range(2))


class TestFraming:
    def test_round_trip_with_payload(self, pair):
        a, b = pair
        send_frame(a, {"type": "result", "unit": "u1"}, b"\x00\x01binary")
        header, payload = recv_frame(b)
        assert header == {"type": "result", "unit": "u1"}
        assert payload == b"\x00\x01binary"

    def test_empty_payload_default(self, pair):
        a, b = pair
        send_message(a, "lease", wait=0.5)
        header, payload = recv_frame(b)
        assert header["wait"] == 0.5
        assert payload == b""

    def test_bad_magic_rejected(self, pair):
        a, b = pair
        a.sendall(prologue(b"EVIL", 2, 0, b"{}") + b"{}")
        with pytest.raises(WireError, match="magic"):
            recv_frame(b)

    def test_oversized_header_prefix_rejected_before_allocation(self, pair):
        a, b = pair
        a.sendall(prologue(MAGIC, MAX_HEADER_BYTES + 1, 0))
        with pytest.raises(WireError, match="header length prefix"):
            recv_frame(b)

    def test_oversized_payload_prefix_rejected_before_allocation(self, pair):
        a, b = pair
        # A garbage prefix decoding as ~2**63 bytes must not allocate.
        a.sendall(prologue(MAGIC, 2, MAX_PAYLOAD_BYTES + 1, b"{}") + b"{}")
        with pytest.raises(WireError, match="payload length prefix"):
            recv_frame(b)

    def test_truncated_prologue_is_wire_error(self, pair):
        a, b = pair
        a.sendall(MAGIC + b"\x01")  # 5 of 20 prologue bytes, then EOF
        a.close()
        with pytest.raises(WireError, match="mid-frame"):
            recv_frame(b)

    def test_truncated_header_is_wire_error(self, pair):
        a, b = pair
        a.sendall(prologue(MAGIC, 100, 0) + b'{"type"')
        a.close()
        with pytest.raises(WireError, match="frame header"):
            recv_frame(b)

    def test_truncated_payload_is_wire_error(self, pair):
        a, b = pair
        # Promise 1000 payload bytes, deliver 4, die: the exact shape of
        # a worker SIGKILLed mid-report.
        raw = b'{"type":"result"}'
        a.sendall(prologue(MAGIC, len(raw), 1000) + raw + b"oops")
        a.close()
        with pytest.raises(WireError, match="frame payload"):
            recv_frame(b)

    def test_clean_eof_is_flagged(self, pair):
        a, b = pair
        a.close()
        with pytest.raises(WireError) as excinfo:
            recv_frame(b)
        assert excinfo.value.clean_eof is True

    def test_mid_frame_eof_is_not_clean(self, pair):
        a, b = pair
        a.sendall(MAGIC)
        a.close()
        with pytest.raises(WireError) as excinfo:
            recv_frame(b)
        assert excinfo.value.clean_eof is False

    def test_garbage_header_is_wire_error(self, pair):
        a, b = pair
        raw = b"\xffnot json at all"
        a.sendall(prologue(MAGIC, len(raw), 0, raw) + raw)
        with pytest.raises(WireError, match="garbage"):
            recv_frame(b)

    def test_header_must_be_object_with_type(self, pair):
        a, b = pair
        for raw in (b"[1,2]", b'{"no_type":1}', b'{"type":7}'):
            a.sendall(prologue(MAGIC, len(raw), 0, raw) + raw)
            with pytest.raises(WireError, match="'type'"):
                recv_frame(b)

    def test_send_refuses_oversized_header(self, pair):
        a, _b = pair
        with pytest.raises(WireError, match="exceeds the cap"):
            send_frame(a, {"type": "x", "blob": "y" * (MAX_HEADER_BYTES + 1)})

    def test_large_frame_survives_socket_chunking(self, pair):
        a, b = pair
        payload = bytes(range(256)) * 4096  # 1 MiB, > any socket buffer
        received: list[bytes] = []
        reader = threading.Thread(
            target=lambda: received.append(recv_frame(b)[1])
        )
        reader.start()
        send_frame(a, {"type": "result"}, payload)
        reader.join(timeout=10.0)
        assert received == [payload]


class TestChecksum:
    def corrupted_frame(self, at: int) -> bytes:
        """A valid result frame with one byte XOR-flipped at offset ``at``."""
        a, b = socket.socketpair()
        try:
            send_frame(a, {"type": "result", "unit": "u1"}, b"payload-bytes")
            raw = bytearray(b.recv(65536))
        finally:
            a.close()
            b.close()
        raw[at] ^= 0x40
        return bytes(raw)

    def test_corrupt_payload_byte_is_caught(self, pair):
        a, b = pair
        # Flip the LAST byte — deep inside the payload, past everything
        # the header checks could see.  Without the CRC this byte would
        # merge silently as wrong record data.
        frame = self.corrupted_frame(-1)
        a.sendall(frame)
        with pytest.raises(WireError, match="checksum mismatch"):
            recv_frame(b)

    def test_corrupt_header_byte_is_caught(self, pair):
        a, b = pair
        frame = self.corrupted_frame(_PROLOGUE.size + 2)
        a.sendall(frame)
        with pytest.raises(WireError, match="checksum mismatch"):
            recv_frame(b)

    def test_clean_frame_passes_the_checksum(self, pair):
        a, b = pair
        send_frame(a, {"type": "result"}, bytes(range(256)))
        header, payload = recv_frame(b)
        assert header["type"] == "result"
        assert payload == bytes(range(256))


class TestReadDeadlines:
    def test_idle_peer_at_frame_boundary_is_not_timed_out(self, pair):
        a, b = pair
        # Nothing sent for longer than the frame deadline: the read
        # must still complete once a whole frame finally arrives.
        def late_send():
            time.sleep(0.3)
            send_frame(a, {"type": "lease"})
        threading.Thread(target=late_send, daemon=True).start()
        header, _payload = recv_frame(b, frame_timeout=0.15)
        assert header["type"] == "lease"

    def test_stalled_mid_frame_peer_times_out_typed(self, pair):
        a, b = pair
        a.sendall(MAGIC)  # first bytes arrive, then silence
        with pytest.raises(WireError, match="stalled") as excinfo:
            recv_frame(b, frame_timeout=0.15)
        assert excinfo.value.timed_out is True

    def test_slow_drip_past_the_deadline_times_out_typed(self, pair):
        a, b = pair
        frame = bytearray()
        fake = socket.socketpair()
        try:
            send_frame(fake[0], {"type": "lease"})
            frame += fake[1].recv(65536)
        finally:
            fake[0].close()
            fake[1].close()

        def drip():
            try:
                for offset in range(len(frame)):
                    a.sendall(frame[offset:offset + 1])
                    time.sleep(0.05)
            except OSError:
                pass

        threading.Thread(target=drip, daemon=True).start()
        with pytest.raises(WireError, match="stalled") as excinfo:
            recv_frame(b, frame_timeout=0.2)
        assert excinfo.value.timed_out is True

    def test_previous_socket_timeout_is_restored(self, pair):
        a, b = pair
        b.settimeout(7.5)
        send_frame(a, {"type": "lease"})
        recv_frame(b, frame_timeout=5.0)
        assert b.gettimeout() == 7.5


class TestMessages:
    def test_recv_message_checks_type(self, pair):
        a, b = pair
        send_message(a, "idle")
        with pytest.raises(WireError, match="expected 'unit'"):
            recv_message(b, "unit")

    def test_error_frames_surface_as_wire_errors(self, pair):
        a, b = pair
        send_message(a, "error", message="job failed: boom")
        with pytest.raises(WireError, match="job failed: boom"):
            recv_message(b, "done")


class TestRecordCodec:
    def test_batch_codec_round_trip(self):
        records = sample_records()
        codec, payload = encode_records(records)
        assert codec == "batch"
        assert decode_records(codec, payload) == records

    def test_pickle_fallback_round_trip(self):
        # A tuple report value does not survive JSON exactly, so the
        # batch must take the object channel — same rule as the fabric.
        records = [
            dataclasses.replace(
                record, reports={"a": {"odd": (1, 2)}, "b": {}}
            )
            for record in sample_records()
        ]
        codec, payload = encode_records(records)
        assert codec == "pickle"
        assert decode_records(codec, payload) == records

    def test_undecodable_payload_is_wire_error(self):
        with pytest.raises(WireError, match="undecodable"):
            decode_records("batch", b"this is not a batch")
        with pytest.raises(WireError, match="undecodable"):
            decode_records("pickle", b"\x80\x04junk")

    def test_pickled_non_records_rejected(self):
        import pickle

        with pytest.raises(WireError, match="undecodable"):
            decode_records("pickle", pickle.dumps(["not", "records"]))

    def test_unknown_codec_is_wire_error(self):
        with pytest.raises(WireError, match="unknown record codec"):
            decode_records("msgpack", b"")


class TestAddresses:
    def test_round_trip(self):
        assert parse_address("10.0.0.7:7641") == ("10.0.0.7", 7641)
        assert format_address(("10.0.0.7", 7641)) == "10.0.0.7:7641"

    def test_bad_addresses(self):
        for text in ("nocolon", ":7641", "host:notaport"):
            with pytest.raises(WireError):
                parse_address(text)

    def test_wire_error_is_typed(self):
        # The CLI and callers catch the project-root error type.
        assert issubclass(WireError, ServiceError)
        assert issubclass(ServiceError, ReproError)
