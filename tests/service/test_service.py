"""Broker × worker × client integration for the sweep service.

Everything here runs in one process: the broker's threads serve real
sockets on localhost and workers run in background threads
(:func:`run_worker` is thread-safe per host since each host owns its
socket).  Process-level fault injection — SIGKILLing hosts mid-sweep
— lives in ``test_worker_kill.py``.
"""

from __future__ import annotations

import socket
import threading

import pytest

from repro.errors import ReproError, ServiceError, WireError
from repro.experiments.cache import ResultCache
from repro.experiments.parallel import SweepSpec, run_sweep
from repro.service import (
    Broker,
    broker_status,
    queue_sweep,
    run_worker,
    submit_sweep,
    unit_id_for,
)
from repro.service.protocol import recv_message, send_message


def small_spec(**overrides) -> SweepSpec:
    settings = dict(
        name="svc-test",
        families=("complete",),
        ns=(24,),
        deltas=("n^0.75",),
        algorithms=("trivial",),
        seeds=tuple(range(6)),
        preset="testing",
    )
    settings.update(overrides)
    return SweepSpec(**settings)


def start_worker_thread(address, **kwargs) -> threading.Thread:
    thread = threading.Thread(
        target=run_worker, args=(address,), kwargs=kwargs, daemon=True
    )
    thread.start()
    return thread


class TestSpecPayload:
    def test_round_trip(self):
        spec = small_spec(scenarios=("none", "edge-churn"), max_rounds=77)
        rebuilt = SweepSpec.from_payload(spec.describe())
        assert rebuilt == spec
        assert rebuilt.spec_hash() == spec.spec_hash()

    def test_default_scenarios_round_trip(self):
        # describe() omits the scenarios key for the ("none",) default.
        spec = small_spec()
        assert SweepSpec.from_payload(spec.describe()) == spec

    def test_malformed_payloads_rejected(self):
        good = small_spec().describe()
        with pytest.raises(ReproError, match="JSON object"):
            SweepSpec.from_payload(["not", "a", "dict"])  # type: ignore[arg-type]
        with pytest.raises(ReproError, match="format version"):
            SweepSpec.from_payload({**good, "version": 0})
        missing = dict(good)
        del missing["families"]
        with pytest.raises(ReproError, match="malformed"):
            SweepSpec.from_payload(missing)

    def test_unit_ids_are_stable_content_addresses(self):
        spec = small_spec()
        h = spec.spec_hash()
        assert unit_id_for(h, [0, 1, 2]) == unit_id_for(h, (0, 1, 2))
        assert unit_id_for(h, [0, 1, 2]) != unit_id_for(h, [0, 1, 3])
        assert unit_id_for(h, [0]) != unit_id_for(small_spec(ns=(32,)).spec_hash(), [0])


class TestEndToEnd:
    def test_fleet_matches_serial_sweep_byte_for_byte(self, tmp_path):
        spec = small_spec(families=("complete", "er-min-degree"), ns=(24, 32))
        serial = run_sweep(spec, workers=1, fabric=False)
        with Broker(tmp_path / "cache", unit_size=4) as broker:
            for _ in range(2):
                start_worker_thread(broker.address, max_units=None, reconnect=2.0)
            result = submit_sweep(broker.address, spec)
        assert result.records == serial.records
        svc = result.write_jsonl(tmp_path / "svc.jsonl")
        ref = serial.write_jsonl(tmp_path / "ref.jsonl")
        assert svc.read_bytes() == ref.read_bytes()
        assert result.executed == len(serial.records)
        assert result.cached == 0

    def test_progress_reaches_total(self, tmp_path):
        spec = small_spec()
        seen: list[tuple[int, int]] = []
        with Broker(tmp_path / "cache", unit_size=2) as broker:
            start_worker_thread(broker.address, reconnect=2.0)
            submit_sweep(broker.address, spec, progress=lambda d, t: seen.append((d, t)))
        assert seen[-1] == (len(spec.points()), len(spec.points()))
        assert all(total == len(spec.points()) for _done, total in seen)

    def test_warehouse_broker_matches_jsonl_broker(self, tmp_path):
        spec = small_spec()
        with Broker(tmp_path / "jsonl-cache", unit_size=3) as broker:
            start_worker_thread(broker.address, reconnect=2.0)
            via_jsonl = submit_sweep(broker.address, spec)
        with Broker(tmp_path / "wh-cache", warehouse=True, unit_size=3) as broker:
            start_worker_thread(broker.address, reconnect=2.0)
            via_wh = submit_sweep(broker.address, spec)
        assert via_jsonl.records == via_wh.records

    def test_multiworker_host_matches_inline_host(self, tmp_path):
        spec = small_spec(seeds=tuple(range(8)))
        serial = run_sweep(spec, workers=1, fabric=False)
        with Broker(tmp_path / "cache", unit_size=4) as broker:
            start_worker_thread(broker.address, workers=2, reconnect=2.0)
            result = submit_sweep(broker.address, spec)
        assert result.records == serial.records

    def test_status_reports_merged_units(self, tmp_path):
        spec = small_spec()
        with Broker(tmp_path / "cache", unit_size=2) as broker:
            start_worker_thread(broker.address, reconnect=2.0)
            submit_sweep(broker.address, spec)
            status = broker_status(broker.address)
        job = status["jobs"][spec.spec_hash()]
        assert job["finished"] is True
        assert job["merged"] == job["units"] == 3
        assert job["queued"] == job["leased"] == 0


class TestCacheSemantics:
    def test_resubmission_is_served_from_cache(self, tmp_path):
        spec = small_spec()
        with Broker(tmp_path / "cache") as broker:
            start_worker_thread(broker.address, reconnect=2.0)
            first = submit_sweep(broker.address, spec)
            again = submit_sweep(broker.address, spec)
        assert first.executed == len(spec.points())
        assert again.executed == 0
        assert again.cached == len(spec.points())
        assert again.records == first.records

    def test_broker_restart_resumes_from_cache_commit_point(self, tmp_path):
        spec = small_spec(seeds=tuple(range(8)))  # 4 units of 2
        cache_dir = tmp_path / "cache"
        broker = Broker(cache_dir, unit_size=2)
        broker.start()
        try:
            queue_sweep(broker.address, spec)
            # Drain exactly two units, then the worker exits.
            done = run_worker(broker.address, max_units=2, reconnect=2.0)
            assert done == 2
        finally:
            broker.stop()  # in-memory job state gone; cache survives
        cached = ResultCache(cache_dir, spec.spec_hash())
        try:
            assert len(list(cached.iter_records())) == 4  # 2 units x 2 trials
        finally:
            cached.close()
        # A fresh broker on the same directory resumes: 4 trials are
        # already durable, only the remaining 4 execute.
        with Broker(cache_dir, unit_size=2) as broker:
            start_worker_thread(broker.address, reconnect=2.0)
            result = submit_sweep(broker.address, spec)
        assert result.cached == 4
        assert result.executed == 4
        assert result.records == run_sweep(spec, workers=1, fabric=False).records

    def test_concurrent_submissions_share_one_job(self, tmp_path):
        spec = small_spec()
        results: list = []
        with Broker(tmp_path / "cache", unit_size=2) as broker:
            clients = [
                threading.Thread(
                    target=lambda: results.append(submit_sweep(broker.address, spec))
                )
                for _ in range(3)
            ]
            for client in clients:
                client.start()
            start_worker_thread(broker.address, reconnect=2.0)
            for client in clients:
                client.join(timeout=60.0)
        assert len(results) == 3
        assert results[0].records == results[1].records == results[2].records
        # One job executed the grid once; every watcher saw the merge.
        assert {r.executed for r in results} == {len(spec.points())}


class TestFaultPaths:
    def test_mid_batch_disconnect_requeues_cleanly(self, tmp_path):
        """A worker that dies mid-result never half-merges its unit."""
        spec = small_spec()
        with Broker(tmp_path / "cache", unit_size=2, lease_timeout=30.0) as broker:
            queue_sweep(broker.address, spec)
            # Hand-roll a worker that leases a unit, starts a result
            # frame, and dies after promising more bytes than it sends.
            sock = socket.create_connection(broker.address)
            send_message(sock, "hello", workers=1)
            recv_message(sock, "welcome")
            send_message(sock, "lease", wait=5.0)
            unit, _ = recv_message(sock, "unit")
            from repro.service.protocol import _PROLOGUE, MAGIC

            sock.sendall(_PROLOGUE.pack(MAGIC, 500, 10_000, 0) + b'{"type":"result"')
            sock.close()

            def leased_count() -> int:
                job = broker_status(broker.address)["jobs"][spec.spec_hash()]
                return job["leased"]

            deadline = threading.Event()
            for _ in range(200):  # disconnect re-queue is immediate-ish
                if leased_count() == 0:
                    break
                deadline.wait(0.05)
            status = broker_status(broker.address)["jobs"][spec.spec_hash()]
            assert status["leased"] == 0
            assert status["merged"] == 0  # nothing half-merged
            assert status["attempts"] >= 1
            # An honest worker now finishes the whole grid.
            start_worker_thread(broker.address, reconnect=2.0)
            result = submit_sweep(broker.address, spec)
        assert result.records == run_sweep(spec, workers=1, fabric=False).records

    def test_duplicate_result_is_acked_and_dropped(self, tmp_path):
        spec = small_spec(seeds=(0, 1))
        with Broker(tmp_path / "cache", unit_size=2) as broker:
            queue_sweep(broker.address, spec)
            sock = socket.create_connection(broker.address)
            try:
                send_message(sock, "hello", workers=1)
                recv_message(sock, "welcome")
                send_message(sock, "lease", wait=5.0)
                unit, _ = recv_message(sock, "unit")
                from repro.service.worker import _execute_unit

                rebuilt = SweepSpec.from_payload(unit["spec"])
                indices = [int(i) for i in unit["indices"]]
                records = _execute_unit(rebuilt, rebuilt.points(), indices, 1)
                from repro.service.protocol import encode_records

                codec, payload = encode_records(records)
                frame = dict(
                    job=unit["job"], unit=unit["unit"],
                    indices=indices, codec=codec,
                )
                send_message(sock, "result", payload, **frame)
                first, _ = recv_message(sock, "ack")
                send_message(sock, "result", payload, **frame)
                second, _ = recv_message(sock, "ack")
            finally:
                sock.close()
            assert first["merged"] is True
            assert second["merged"] is False  # dropped, not double-merged
            result = submit_sweep(broker.address, spec)
        assert len(result.records) == 2

    def test_deterministic_error_fails_job_fast(self, tmp_path):
        # regular graphs need n * delta even: every lease of that unit
        # would fail identically, so the worker reports unit-failed and
        # the broker fails the job instead of re-queueing five times.
        bad = SweepSpec(
            name="bad", families=("regular",), ns=(21,), deltas=("9",),
            algorithms=("trivial",), seeds=(0, 1), preset="testing",
        )
        with Broker(tmp_path / "cache") as broker:
            start_worker_thread(broker.address, reconnect=2.0)
            with pytest.raises(ServiceError, match="GenerationError"):
                submit_sweep(broker.address, bad)
            status = broker_status(broker.address)["jobs"][bad.spec_hash()]
            assert status["failed"] is not None

    def test_failed_job_can_be_resubmitted_fresh(self, tmp_path):
        spec = small_spec(seeds=(0, 1))
        with Broker(tmp_path / "cache", max_attempts=1, lease_timeout=0.2) as broker:
            queue_sweep(broker.address, spec)
            # Lease and sit on the unit until the single allowed attempt
            # burns out and the job fails.
            sock = socket.create_connection(broker.address)
            try:
                send_message(sock, "hello", workers=1)
                recv_message(sock, "welcome")
                send_message(sock, "lease", wait=5.0)
                recv_message(sock, "unit")
                for _ in range(100):
                    status = broker_status(broker.address)["jobs"][spec.spec_hash()]
                    if status["failed"]:
                        break
                    threading.Event().wait(0.05)
                assert status["failed"] is not None
            finally:
                sock.close()
            # The next submission re-registers the job from scratch.
            start_worker_thread(broker.address, reconnect=2.0)
            result = submit_sweep(broker.address, spec)
        assert len(result.records) == 2

    def test_submit_timeout_raises_service_error(self, tmp_path):
        # No workers and a heartbeat-free silence window shorter than
        # the broker's 2s beat: the client must time out, not hang.
        spec = small_spec(seeds=(0,))
        with Broker(tmp_path / "cache") as broker:
            address = broker.address
            with pytest.raises((ServiceError, WireError)):
                submit_sweep(address, spec, timeout=0.3)

    def test_unreachable_broker_is_a_service_error(self, tmp_path):
        with Broker(tmp_path / "cache") as broker:
            address = broker.address
        # Broker stopped: the port is closed, the redial budget is tiny,
        # and the first dial never succeeding is the caller's problem.
        with pytest.raises(ServiceError):
            run_worker(address, reconnect=0.2)


class TestShutdownHygiene:
    """Satellite: the broker knows (and says) whether it stopped cleanly."""

    def test_is_clean_shutdown_lifecycle(self, tmp_path):
        broker = Broker(tmp_path / "cache")
        assert broker.is_clean_shutdown is False  # never started
        broker.start()
        assert broker.is_clean_shutdown is False  # still running
        broker.stop()
        assert broker.is_clean_shutdown is True

    def test_stop_is_clean_with_an_idle_worker_attached(self, tmp_path):
        # The accept thread is parked in accept() and a conn thread is
        # parked waiting for the idle worker's next lease: both must be
        # woken by stop(), not abandoned to the join timeout.
        with Broker(tmp_path / "cache") as broker:
            start_worker_thread(broker.address, reconnect=0.5)
            spec = small_spec(seeds=(0, 1))
            result = submit_sweep(broker.address, spec)
        assert len(result.records) == 2
        assert broker.is_clean_shutdown is True


class TestStatusErrors:
    """Satellite: broker_status against dead or hung peers is typed."""

    def test_dead_address_is_a_typed_error_naming_the_peer(self, tmp_path):
        with Broker(tmp_path / "cache") as broker:
            host, port = broker.address
        # Broker stopped: the port refuses connections.
        with pytest.raises(ServiceError, match=f"{host}:{port}"):
            broker_status((host, port), retry=0.2)

    def test_hung_peer_is_a_typed_not_answering_error(self):
        # A listener that accepts and then says nothing: the client's
        # read deadline must turn the silence into a typed error, fast.
        server = socket.create_server(("127.0.0.1", 0))
        host, port = server.getsockname()[:2]
        try:
            with pytest.raises(ServiceError, match="not answering"):
                broker_status((host, port), retry=0.5, timeout=0.3)
        finally:
            server.close()

    def test_status_cli_exits_2_on_dead_broker(self, tmp_path, capsys):
        from repro.cli import main

        with Broker(tmp_path / "cache") as broker:
            host, port = broker.address
        assert main([
            "status", "--connect", f"{host}:{port}", "--retry", "0.2",
        ]) == 2
        assert f"{host}:{port}" in capsys.readouterr().err
