"""Differential fault proof: SIGKILL a worker host mid-sweep.

The strongest claim the service makes is that worker loss is
*invisible* in the output: the broker re-queues the dead host's leased
units, a surviving host re-runs them, and the merged export is
byte-identical to a serial :func:`run_sweep` — no lost trials, no
duplicates, no half-merged batches.  This test makes that claim
falsifiable with a real ``SIGKILL`` (no atexit handlers, no socket
shutdown — the hardest way a host can die), for both cache backends.

Determinism of the kill window: the victim host patches
``_execute_unit`` to sleep before running each unit, so every lease
stays observable via ``broker_status`` for ~150ms and the kill always
lands while at least one unit is leased.  The victim runs with
``workers=1`` (units inline) so the kill orphans no fabric children.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time

import pytest

from repro.experiments.cache import ResultCache
from repro.experiments.parallel import SweepSpec, run_sweep
from repro.experiments.warehouse import WarehouseCache
from repro.service import Broker, broker_status, queue_sweep, submit_sweep
from repro.service.worker import run_worker


def kill_spec() -> SweepSpec:
    return SweepSpec(
        name="kill-test",
        families=("complete",),
        ns=(24,),
        deltas=("n^0.75",),
        algorithms=("trivial",),
        seeds=tuple(range(10)),
        preset="testing",
    )


def _slow_victim(address: tuple[str, int]) -> None:
    """Worker-host entry: every unit pauses first, then runs normally.

    Runs in a forked child, so patching the module only affects the
    victim; records stay byte-identical because the pause happens
    outside the trials.
    """
    import repro.service.worker as worker_module

    original = worker_module._execute_unit

    def paused_execute(spec, points, indices, workers):
        time.sleep(0.15)
        return original(spec, points, indices, workers)

    worker_module._execute_unit = paused_execute
    run_worker(address, workers=1, reconnect=2.0)


def _poll(predicate, timeout: float = 20.0, interval: float = 0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval)
    raise AssertionError("condition not reached before timeout")


@pytest.mark.parametrize("warehouse", [False, True], ids=["jsonl", "warehouse"])
def test_sigkilled_worker_is_invisible_in_the_output(tmp_path, warehouse):
    spec = kill_spec()
    serial = run_sweep(spec, workers=1, fabric=False)
    fork = multiprocessing.get_context("fork")
    with Broker(
        tmp_path / "cache", warehouse=warehouse, unit_size=1, lease_timeout=30.0
    ) as broker:
        queue_sweep(broker.address, spec)
        victim = fork.Process(target=_slow_victim, args=(broker.address,))
        victim.start()

        def job_status():
            return broker_status(broker.address)["jobs"][spec.spec_hash()]

        # The victim holds each lease ~150ms, so this observation is
        # deterministic, and the kill below always lands mid-unit.
        _poll(lambda: job_status()["leased"] >= 1)
        os.kill(victim.pid, signal.SIGKILL)
        victim.join(timeout=10.0)
        assert victim.exitcode == -signal.SIGKILL

        # Disconnect detection re-queues the leased unit (no lease
        # expiry needed: the kernel closes the socket on process death).
        _poll(lambda: job_status()["leased"] == 0)
        status = job_status()
        assert status["attempts"] >= 1
        assert not status["finished"]

        # A healthy host finishes the job; the dead host's units re-ran.
        import threading

        threading.Thread(
            target=run_worker, args=(broker.address,),
            kwargs={"reconnect": 2.0}, daemon=True,
        ).start()
        result = submit_sweep(broker.address, spec)

        final = job_status()
        assert final["finished"] is True
        assert final["merged"] == final["units"] == len(spec.points())

    # The merged output is byte-identical to the serial engine's.
    assert result.records == serial.records
    svc = result.write_jsonl(tmp_path / "svc.jsonl")
    ref = serial.write_jsonl(tmp_path / "ref.jsonl")
    assert svc.read_bytes() == ref.read_bytes()

    # And the broker's durable cache holds exactly one copy of each
    # trial — duplicates from the re-run were dropped before the merge.
    if warehouse:
        cache: WarehouseCache | ResultCache = WarehouseCache(
            tmp_path / "cache", spec.spec_hash()
        )
        try:
            stored = dict(cache.iter_indexed())
        finally:
            cache.close()
        assert sorted(stored) == list(range(len(spec.points())))
        assert [stored[i] for i in range(len(stored))] == list(serial.records)
    else:
        cache = ResultCache(tmp_path / "cache", spec.spec_hash())
        try:
            stored_records = [record for _key, record in cache.iter_records()]
        finally:
            cache.close()
        assert len(stored_records) == len(spec.points())
        assert sorted(r.seed for r in stored_records) == list(range(10))


def test_broker_killed_and_restarted_resumes_without_rerunning(tmp_path):
    """The broker side of the fault matrix: durable commits survive it.

    ``Broker.stop`` discards all in-memory state — jobs, leases, the
    merge queue — which is exactly what a crash loses.  The restarted
    broker must resume from the caches' commit point: already-merged
    units are never re-executed (their unit ids never reappear in the
    new shard), pending ones finish normally.
    """
    from repro.service import unit_id_for

    spec = kill_spec()
    cache_dir = tmp_path / "cache"
    broker = Broker(cache_dir, unit_size=2, lease_timeout=30.0)
    broker.start()
    try:
        queue_sweep(broker.address, spec)
        done = run_worker(broker.address, max_units=2, reconnect=2.0)
        assert done == 2
    finally:
        broker.stop()

    executed_units = {
        unit_id_for(spec.spec_hash(), indices)
        for indices in ([0, 1], [2, 3])
    }
    with Broker(cache_dir, unit_size=2, lease_timeout=30.0) as broker:
        leased_ids: list[str] = []
        accepted = queue_sweep(broker.address, spec)
        assert accepted["already"] == 4  # resumed from the durable commit point
        # Drain the remaining units, recording every unit id handed out.
        completed = run_worker(
            broker.address, reconnect=2.0, max_units=3,
            on_unit=lambda unit_id, _n: leased_ids.append(unit_id),
        )
        assert completed == 3
        # This submission arrives after the drain, so the whole grid is
        # served from the durable cache — nothing executes for it.
        result = submit_sweep(broker.address, spec)
    assert executed_units.isdisjoint(leased_ids)  # no re-run of merged work
    assert result.cached == 10
    assert result.executed == 0
    assert result.records == run_sweep(spec, workers=1, fabric=False).records
