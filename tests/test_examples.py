"""Every example script runs end to end (small parameters)."""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(monkeypatch, capsys, script: str, *args: str) -> str:
    monkeypatch.setattr(sys, "argv", [script, *args])
    runpy.run_path(str(EXAMPLES / script), run_name="__main__")
    return capsys.readouterr().out


def test_quickstart(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "quickstart.py", "200", "1")
    assert "met: True" in out


def test_swarm_proximity(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "swarm_proximity.py", "200", "2")
    assert "theorem1" in out
    assert "met 2/2" in out


def test_p2p_overlay(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "p2p_overlay.py", "200")
    assert "met: True" in out
    assert "0 reads, 0 writes" in out


def test_adversarial_deterministic(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "adversarial_deterministic.py", "128")
    assert "met = False" in out
    assert "met = True" in out


def test_swarm_gathering(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "swarm_gathering.py", "200", "3")
    assert "gathered: True" in out


def test_algorithm_shootout(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "algorithm_shootout.py", "200")
    assert "theorem1" in out
    assert "trivial" in out
