"""Tests for the distance-two trail-mark extension."""

from __future__ import annotations

import random

import pytest

from repro.extensions.multihop import multihop_programs
from repro.graphs.generators import random_graph_with_min_degree
from repro.runtime.scheduler import SyncScheduler


def distance_pair(graph, distance):
    start = graph.vertices[0]
    partner = next(
        (v for v in graph.vertices if graph.distance(start, v) == distance), None
    )
    if partner is None:
        pytest.skip(f"no vertex at distance {distance}")
    return start, partner


def run_multihop(graph, start_a, start_b, seed, constants):
    prog_a, prog_b = multihop_programs(graph.min_degree, constants)
    return SyncScheduler(
        graph, prog_a, prog_b, start_a, start_b, seed=seed,
        max_rounds=4_000_000,
    ).run()


class TestDistanceTwo:
    @pytest.mark.parametrize("seed", range(4))
    def test_meets_at_distance_two(self, dense_graph_small, testing_constants, seed):
        start_a, start_b = distance_pair(dense_graph_small, 2)
        result = run_multihop(
            dense_graph_small, start_a, start_b, seed, testing_constants
        )
        assert result.met

    def test_subsumes_distance_one(self, dense_graph_small, testing_constants):
        start_a = dense_graph_small.vertices[0]
        start_b = dense_graph_small.neighbors(start_a)[0]
        result = run_multihop(
            dense_graph_small, start_a, start_b, 0, testing_constants
        )
        assert result.met

    def test_trail_marks_are_walkable(self, dense_graph_small, testing_constants):
        """Every trail left on a whiteboard is a valid path to v0_b."""
        start_a, start_b = distance_pair(dense_graph_small, 2)
        prog_a, prog_b = multihop_programs(
            dense_graph_small.min_degree, testing_constants
        )
        scheduler = SyncScheduler(
            dense_graph_small, prog_a, prog_b, start_a, start_b, seed=1,
            max_rounds=4_000_000,
        )
        scheduler.run()
        g = dense_graph_small
        for vertex in scheduler.whiteboards.written_vertices():
            value = scheduler.whiteboards.peek(vertex)
            if not (isinstance(value, tuple) and value and value[0] == "trail"):
                continue
            trail = value[1]
            here = vertex
            for hop in trail:
                assert g.has_edge(here, hop) or here == hop
                here = hop
            assert here == start_b

    def test_reports(self, dense_graph_small, testing_constants):
        start_a, start_b = distance_pair(dense_graph_small, 2)
        result = run_multihop(
            dense_graph_small, start_a, start_b, 2, testing_constants
        )
        assert result.met
        assert result.reports["a"].get("probes", 0) >= 0
        # b's report carries its dense-set size unless the agents
        # collided while b was still constructing.
        report_b = result.reports["b"]
        assert "target_set_size" in report_b or report_b.get("marks", 0) == 0

    def test_deterministic_given_seed(self, dense_graph_small, testing_constants):
        start_a, start_b = distance_pair(dense_graph_small, 2)
        r1 = run_multihop(dense_graph_small, start_a, start_b, 5, testing_constants)
        r2 = run_multihop(dense_graph_small, start_a, start_b, 5, testing_constants)
        assert r1.rounds == r2.rounds


class TestEstimationPath:
    def test_unknown_delta_uses_estimation(self, testing_constants):
        g = random_graph_with_min_degree(150, 35, random.Random(4))
        prog_a, prog_b = multihop_programs(None, testing_constants)
        start_a = g.vertices[0]
        start_b = next(v for v in g.vertices if g.distance(start_a, v) == 2)
        result = SyncScheduler(
            g, prog_a, prog_b, start_a, start_b, seed=0, max_rounds=4_000_000
        ).run()
        assert result.met
