"""Differential property tests for compiled execution plans.

An :class:`~repro.runtime.plan.ExecutionPlan` is only a *re-encoding*
of a ``(StaticGraph, PortLabeling)`` pair: every array accessor must
agree with the dict/frozenset accessors of the objects it was compiled
from — on every registered sweep family, under both port models, with
shuffled hidden labelings.  These tests pin that agreement (plus the
compile-time compatibility checks and the dense-index translation
boundary) so the engine's hot loop can trust the arrays blindly.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SchedulerError
from repro.experiments.parallel import GRAPH_FAMILIES, build_graph
from repro.graphs.generators import dilate_id_space, random_graph_with_min_degree
from repro.graphs.ports import PortLabeling, PortModel
from repro.runtime.plan import ExecutionPlan


def assert_plan_matches(graph, labeling, plan):
    """Every plan accessor vs the graph/labeling dict accessors."""
    assert plan.n == graph.n
    assert plan.ids == graph.vertices
    assert len(plan.neighbor_offsets) == plan.n + 1
    assert plan.neighbor_offsets[-1] == len(plan.neighbor_indices) == 2 * graph.edge_count
    for index, vertex in enumerate(graph.vertices):
        assert plan.index(vertex) == index
        assert plan.vertex_id(index) == vertex
        assert plan.degree_of(index) == graph.degree(vertex)
        # CSR slice, translated back to identifiers, is N(v) in order.
        csr_ids = tuple(plan.ids[i] for i in plan.neighbor_slice(index))
        assert csr_ids == graph.neighbors(vertex)
        assert plan.neighbor_ids_of(index) == graph.neighbors(vertex)
        if plan.port_model is PortModel.KT1:
            # The KT1 movement-resolution row agrees with the membership set.
            assert set(plan.nbr_index[index]) == set(graph.neighbor_set(vertex))
            for u, dense in plan.nbr_index[index].items():
                assert plan.ids[dense] == u
        else:
            assert plan.nbr_index is None  # never read by KT0 loops
        assert plan.closed_set(index) == graph.closed_neighbor_set(vertex)
        assert plan.accessible_ports_of(index) == labeling.accessible_ports(
            vertex, plan.port_model
        )
        if plan.port_model is PortModel.KT0:
            # The flat port table row is the hidden bijection P̂_v.
            row = plan.port_row(index)
            hidden = labeling.port_table()[vertex]
            assert tuple(plan.ids[i] for i in row) == hidden
            offset = plan.neighbor_offsets[index]
            flat = tuple(
                plan.port_targets[offset + p] for p in range(len(row))
            )
            assert flat == row
            for port, neighbor in enumerate(hidden):
                assert labeling.resolve(vertex, port) == neighbor


@pytest.mark.parametrize("family", sorted(GRAPH_FAMILIES))
@pytest.mark.parametrize("port_model", [PortModel.KT1, PortModel.KT0])
def test_every_registered_family(family, port_model):
    """Array accessors agree with dict accessors on every sweep family."""
    graph = build_graph(family, 36, "8")
    labeling = PortLabeling(graph, rng=random.Random(f"plan:{family}"))
    plan = ExecutionPlan.compile(graph, labeling=labeling, port_model=port_model)
    assert_plan_matches(graph, labeling, plan)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000), kt0=st.booleans())
def test_randomized_er_graphs(seed, kt0):
    """Hypothesis sweep: random instances, shuffled hidden labelings."""
    rng = random.Random(seed)
    graph = random_graph_with_min_degree(30, 6, rng)
    labeling = PortLabeling(graph, rng=rng)
    model = PortModel.KT0 if kt0 else PortModel.KT1
    plan = ExecutionPlan.compile(graph, labeling=labeling, port_model=model)
    assert_plan_matches(graph, labeling, plan)


def test_non_contiguous_identifiers():
    """Dilated ID spaces: dense indices differ from public identifiers."""
    base = random_graph_with_min_degree(24, 6, random.Random("dilate"))
    graph = dilate_id_space(base, 4, random.Random("dilate-map"))
    assert graph.vertices != tuple(range(graph.n))  # the premise
    labeling = PortLabeling(graph, rng=random.Random("dilate-ports"))
    for model in (PortModel.KT1, PortModel.KT0):
        plan = ExecutionPlan.compile(graph, labeling=labeling, port_model=model)
        assert_plan_matches(graph, labeling, plan)


class TestCompileContracts:
    def test_kt1_plans_skip_port_tables(self):
        graph = build_graph("complete", 16, "8")
        plan = ExecutionPlan.compile(graph)
        assert plan.kt0_rows is None and plan.kt0_ports is None
        with pytest.raises(SchedulerError):
            plan.port_row(0)

    def test_kt1_default_labeling_is_lazy(self):
        graph = build_graph("complete", 16, "8")
        plan = ExecutionPlan.compile(graph)
        assert plan._labeling is None
        assert plan.labeling.graph is graph  # built on first access
        assert plan._labeling is plan.labeling

    def test_foreign_labeling_rejected(self):
        graph = build_graph("complete", 16, "8")
        other = build_graph("regular", 16, "8")
        with pytest.raises(SchedulerError, match="different graph"):
            ExecutionPlan.compile(graph, labeling=PortLabeling(other))

    def test_ensure_matches(self):
        graph = build_graph("regular", 16, "4")
        twin = graph.relabeled({v: v for v in graph.vertices})
        plan = ExecutionPlan.compile(graph)
        plan.ensure_matches(graph, None, PortModel.KT1)
        # A content-equal labeling is the same execution — accepted.
        plan.ensure_matches(graph, PortLabeling(graph), PortModel.KT1)
        with pytest.raises(SchedulerError, match="different graph"):
            plan.ensure_matches(twin, None, PortModel.KT1)
        with pytest.raises(SchedulerError, match="KT1, not KT0"):
            plan.ensure_matches(graph, None, PortModel.KT0)
        shuffled = PortLabeling(graph, rng=random.Random(99))
        with pytest.raises(SchedulerError, match="different port labeling"):
            plan.ensure_matches(graph, shuffled, PortModel.KT1)

    def test_plan_with_custom_labeling_governs_the_run(self):
        """A KT0 plan carries its labeling; the plan-less twin must pass
        the same labeling explicitly to reproduce the records."""
        from repro.experiments.harness import run_trial, run_trials

        graph = build_graph("regular", 24, "4")
        shuffled = PortLabeling(graph, rng=random.Random(5))
        plan = ExecutionPlan.compile(
            graph, labeling=shuffled, port_model=PortModel.KT0
        )
        batched = run_trials(
            graph, "random-walk", range(3),
            plan=plan, port_model=PortModel.KT0, max_rounds=2_000,
        )
        serial = [
            run_trial(graph, "random-walk", seed, labeling=shuffled,
                      port_model=PortModel.KT0, max_rounds=2_000)
            for seed in range(3)
        ]
        assert batched == serial
