"""Differential tests for shared-memory plan transport.

The promise under test: a plan attached from a shared-memory segment
(:func:`repro.runtime.plan.attach_plan`) is indistinguishable — down
to byte-identical trial records — from a plan compiled locally on the
same instance, for every registered algorithm under both port models.
"""

from __future__ import annotations

import pickle
import random

import pytest

from repro.core.api import ALGORITHMS
from repro.errors import SchedulerError
from repro.experiments.harness import run_trials
from repro.graphs.generators import complete_graph, random_graph_with_min_degree
from repro.graphs.graph import StaticGraph
from repro.graphs.ports import PortLabeling, PortModel
from repro.runtime.plan import (
    ExecutionPlan,
    PlanShare,
    attach_plan,
    shared_plans_available,
)


pytestmark = pytest.mark.skipif(
    not shared_plans_available(), reason="no multiprocessing.shared_memory"
)


def roundtrip(plan: ExecutionPlan):
    """Export, attach (through a pickled handle, like a real task), close."""
    share = PlanShare.export(plan)
    handle = pickle.loads(pickle.dumps(share.handle))
    attached = attach_plan(handle)
    return share, attached


@pytest.fixture(scope="module")
def instance() -> StaticGraph:
    return random_graph_with_min_degree(48, 12, random.Random("shm-test"))


class TestFlatArrayFidelity:
    def test_csr_and_ids_identical(self, instance):
        plan = ExecutionPlan.compile(instance)
        share, attached = roundtrip(plan)
        try:
            assert attached.plan.n == plan.n
            assert tuple(attached.plan.ids) == tuple(plan.ids)
            assert list(attached.plan.degrees) == list(plan.degrees)
            assert list(attached.plan.neighbor_offsets) == list(plan.neighbor_offsets)
            assert list(attached.plan.neighbor_indices) == list(plan.neighbor_indices)
            assert attached.graph.id_space == instance.id_space
            assert attached.graph.name == instance.name
        finally:
            attached.close()
            share.close()

    def test_kt0_port_table_identical(self, instance):
        labeling = PortLabeling(instance, rng=random.Random(5))
        plan = ExecutionPlan.compile(instance, labeling, port_model=PortModel.KT0)
        share, attached = roundtrip(plan)
        try:
            assert list(attached.plan.port_targets) == list(plan.port_targets)
            # The reconstructed labeling resolves every port identically.
            for v in instance.vertices:
                assert (
                    attached.plan.labeling.port_table()[v]
                    == labeling.port_table()[v]
                )
        finally:
            attached.close()
            share.close()

    def test_attached_arrays_are_zero_copy_views(self, instance):
        plan = ExecutionPlan.compile(instance)
        share, attached = roundtrip(plan)
        try:
            assert isinstance(attached.plan.neighbor_indices, memoryview)
            assert isinstance(attached.plan.neighbor_offsets, memoryview)
        finally:
            attached.close()
            share.close()

    def test_dilated_id_space_round_trips(self):
        base = complete_graph(12)
        dilated = StaticGraph(
            {v * 7 + 3: tuple(u * 7 + 3 for u in base.neighbors(v))
             for v in base.vertices},
            id_space=12 * 7 + 4,
            name="dilated",
        )
        plan = ExecutionPlan.compile(dilated)
        share, attached = roundtrip(plan)
        try:
            assert attached.graph.vertices == dilated.vertices
            assert attached.graph.id_space == dilated.id_space
        finally:
            attached.close()
            share.close()


def _supported_matrix():
    """(algorithm, port model) pairs the runtime accepts."""
    pairs = [(algorithm, PortModel.KT1) for algorithm in ALGORITHMS]
    pairs.append(("random-walk", PortModel.KT0))  # the only KT0-capable one
    return pairs


class TestRecordEquivalence:
    @pytest.mark.parametrize(
        "algorithm,port_model",
        _supported_matrix(),
        ids=lambda value: getattr(value, "value", value),
    )
    def test_attached_plan_records_identical(self, instance, algorithm, port_model):
        labeling = (
            PortLabeling(instance, rng=random.Random(9))
            if port_model is PortModel.KT0
            else None
        )
        plan = ExecutionPlan.compile(instance, labeling, port_model=port_model)
        local = run_trials(
            instance, algorithm, range(4),
            plan=plan, port_model=port_model, labeling=labeling, max_rounds=400,
        )
        share, attached = roundtrip(plan)
        try:
            remote = run_trials(
                attached.graph, algorithm, range(4),
                plan=attached.plan, port_model=port_model, max_rounds=400,
            )
        finally:
            attached.close()
            share.close()
        assert remote == local


class TestLifetime:
    def test_attach_after_unlink_fails(self, instance):
        plan = ExecutionPlan.compile(instance)
        share = PlanShare.export(plan)
        handle = share.handle
        share.close()  # unlinks
        with pytest.raises((FileNotFoundError, OSError)):
            attach_plan(handle)

    def test_close_is_idempotent(self, instance):
        plan = ExecutionPlan.compile(instance)
        share, attached = roundtrip(plan)
        attached.close()
        attached.close()
        share.close()
        share.close()

    def test_attacher_survives_exporter_unlink(self, instance):
        # POSIX keeps the pages until the last mapping closes: a worker
        # that already attached keeps computing after the parent
        # unlinks the name.
        plan = ExecutionPlan.compile(instance)
        share, attached = roundtrip(plan)
        share.close()  # unlink while attached
        try:
            records = run_trials(
                attached.graph, "trivial", range(2), plan=attached.plan
            )
            assert len(records) == 2
        finally:
            attached.close()

    def test_export_requires_shared_memory(self, instance, monkeypatch):
        import repro.runtime.plan as plan_module

        monkeypatch.setattr(plan_module, "_shared_memory", None)
        assert not plan_module.shared_plans_available()
        with pytest.raises(SchedulerError):
            PlanShare.export(ExecutionPlan.compile(instance))
