"""Tests for the k-agent scheduler."""

from __future__ import annotations

import pytest

from repro.errors import SchedulerError
from repro.graphs.generators import complete_graph, cycle_graph, path_graph
from repro.runtime.actions import Halt, Move, Stay, WaitUntil
from repro.runtime.agent import AgentProgram
from repro.runtime.multi import MultiAgentScheduler


class Scripted(AgentProgram):
    def __init__(self, actions):
        self._actions = list(actions)

    def run(self, ctx):
        for action in self._actions:
            yield action


class Idle(AgentProgram):
    def run(self, ctx):
        yield Halt()


class TestConstruction:
    def test_program_start_mismatch(self):
        with pytest.raises(SchedulerError):
            MultiAgentScheduler(path_graph(4), [Idle()], [0])

    def test_needs_two_agents(self):
        with pytest.raises(SchedulerError):
            MultiAgentScheduler(path_graph(4), [Idle()], [0], names=["x"])

    def test_start_outside_graph(self):
        with pytest.raises(SchedulerError):
            MultiAgentScheduler(path_graph(4), [Idle(), Idle()], [0, 9])

    def test_duplicate_names(self):
        with pytest.raises(SchedulerError):
            MultiAgentScheduler(
                path_graph(4), [Idle(), Idle()], [0, 1], names=["x", "x"]
            )

    def test_bad_termination_mode(self):
        with pytest.raises(SchedulerError):
            MultiAgentScheduler(
                path_graph(4), [Idle(), Idle()], [0, 1], termination="some"
            )


class TestGatheringTermination:
    def test_three_agents_converge(self):
        g = path_graph(5)
        result = MultiAgentScheduler(
            g,
            [Scripted([Move(1), Move(2)]),
             Scripted([Move(2)]) ,
             Scripted([Move(3), Move(2)])],
            [0, 1, 4],
            max_rounds=100,
        ).run()
        assert result.completed
        assert result.meeting_vertex == 2
        assert result.rounds == 2

    def test_pairwise_not_enough_in_all_mode(self):
        g = path_graph(5)
        result = MultiAgentScheduler(
            g,
            [Scripted([Move(1)]), Idle(), Idle()],
            [0, 1, 4],
            max_rounds=10,
        ).run()
        # agents 0 and 1 met at vertex 1 but agent 2 never moved.
        assert not result.completed
        assert result.failure_reason in (
            "round budget exhausted", "all agents halted without completing"
        )

    def test_pair_mode_stops_on_first_meeting(self):
        g = path_graph(5)
        result = MultiAgentScheduler(
            g,
            [Scripted([Move(1)]), Idle(), Idle()],
            [0, 1, 4],
            termination="pair",
            max_rounds=10,
        ).run()
        assert result.completed
        assert result.meeting_vertex == 1
        assert result.rounds == 1


class TestFastForwardAndMetrics:
    def test_all_waiting_jumps(self):
        g = path_graph(3)

        class Waiter(AgentProgram):
            def __init__(self, until, move=None):
                self._until = until
                self._move = move

            def run(self, ctx):
                yield WaitUntil(self._until)
                if self._move is not None:
                    yield Move(self._move)

        result = MultiAgentScheduler(
            g,
            [Waiter(50_000, move=1), Waiter(90_000), Waiter(50_000, move=1)],
            [0, 1, 2],
            max_rounds=200_000,
        ).run()
        assert result.completed
        assert result.rounds == 50_001

    def test_moves_counted_per_agent(self):
        g = cycle_graph(6)
        result = MultiAgentScheduler(
            g,
            [Scripted([Move(1), Move(2)]), Scripted([Move(2)]), Idle()],
            [0, 1, 2],
            max_rounds=20,
        ).run()
        assert result.completed
        assert result.moves["agent0"] == 2
        assert result.moves["agent1"] == 1
        assert result.moves["agent2"] == 0

    def test_positions_reported(self):
        g = path_graph(4)
        result = MultiAgentScheduler(
            g, [Idle(), Idle()], [0, 3], max_rounds=5
        ).run()
        assert result.positions == {"agent0": 0, "agent1": 3}


class TestMultiView:
    def test_co_located_agents(self):
        g = complete_graph(5)
        seen = {}

        class Observer(AgentProgram):
            def __init__(self, name):
                self._name = name

            def run(self, ctx):
                yield Move(3)
                seen[self._name] = ctx.view.co_located_agents
                yield Halt()

        MultiAgentScheduler(
            g,
            [Observer("x"), Observer("y"), Idle()],
            [0, 1, 2],
            names=["x", "y", "z"],
            max_rounds=10,
        ).run()
        assert "y" in seen.get("x", ()) or "x" in seen.get("y", ())

    def test_whiteboards_shared(self):
        g = path_graph(3)

        class Writer(AgentProgram):
            def run(self, ctx):
                yield Stay(write="ping")
                yield Halt()

        captured = {}

        class Reader(AgentProgram):
            def run(self, ctx):
                yield Stay()
                yield Move(0)
                captured["value"] = ctx.view.whiteboard
                yield Halt()

        MultiAgentScheduler(
            g, [Writer(), Reader(), Idle()], [0, 1, 2], max_rounds=20
        ).run()
        # Reader moved onto Writer's vertex: termination may hit first
        # in "all" mode only if agent2 also arrives — it never does, so
        # the read executed.
        assert captured["value"] == "ping"
