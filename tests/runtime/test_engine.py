"""Unit tests for the unified engine: tables, views, dispatch edges.

The byte-level equivalence with the seed schedulers is covered by
``tests/integration/test_scheduler_equivalence.py``; this file tests
the engine-specific machinery — precomputed tables, the table-backed
views' model enforcement, and the slow-path dispatch for exotic
``Action`` subclasses.
"""

from __future__ import annotations

import random

import pytest

from repro.errors import ProtocolError, SchedulerError
from repro.graphs.generators import complete_graph, cycle_graph, path_graph
from repro.graphs.ports import PortLabeling, PortModel
from repro.runtime.actions import Halt, Move, Stay
from repro.runtime.agent import AgentProgram
from repro.runtime.engine import Engine, EngineView, MultiAgentView
from repro.runtime.multi import MultiAgentScheduler
from repro.runtime.scheduler import SyncScheduler
from repro.runtime.view import AgentView


class Scripted(AgentProgram):
    def __init__(self, actions):
        self._actions = list(actions)

    def run(self, ctx):
        for action in self._actions:
            yield action


class Idle(AgentProgram):
    def run(self, ctx):
        yield Halt()


class TestPrecomputedTables:
    def test_graph_exposes_adjacency_tables(self):
        g = path_graph(4)
        assert g.neighbor_map[1] == (0, 2)
        assert g.neighbor_set_map[1] == frozenset({0, 2})
        # Same tables the accessors already expose, not copies.
        assert g.neighbor_map[2] is g.neighbors(2)

    def test_labeling_exposes_port_table(self):
        g = cycle_graph(5)
        labeling = PortLabeling(g, rng=random.Random(3))
        table = labeling.port_table()
        for v in g.vertices:
            assert sorted(table[v]) == list(g.neighbors(v))
            for port, neighbor in enumerate(table[v]):
                assert labeling.resolve(v, port) == neighbor

    def test_kt0_tables_built_only_under_kt0(self):
        g = path_graph(3)
        kt1 = Engine(g, (Idle(), Idle()), (0, 2), names=("a", "b"))
        assert kt1.plan.kt0_rows is None and kt1.plan.kt0_ports is None
        kt0 = Engine(
            g, (Idle(), Idle()), (0, 2), names=("a", "b"),
            port_model=PortModel.KT0,
        )
        assert kt0.plan.kt0_ports[1] == (0, 1)
        assert kt0.plan.port_row(1) == tuple(
            kt0.plan.index_of[u] for u in kt0.labeling.port_table()[1]
        )


class TestEngineViews:
    def _view(self, port_model=PortModel.KT1):
        g = path_graph(4)
        engine = Engine(
            g, (Idle(), Idle()), (1, 3), names=("a", "b"), port_model=port_model
        )
        return engine.drivers[0].ctx.view

    def test_views_are_agent_views(self):
        """Engine views keep the public AgentView contract."""
        view = self._view()
        assert isinstance(view, AgentView)
        assert isinstance(view, EngineView)

    def test_kt1_properties(self):
        view = self._view()
        assert view.vertex == 1
        assert view.degree == 2
        assert view.neighbors == (0, 2)
        assert view.ports == (0, 2)
        assert view.closed_neighbors == frozenset({0, 1, 2})
        assert view.round == 0

    def test_kt0_hides_neighbor_identifiers(self):
        view = self._view(PortModel.KT0)
        assert view.ports == (0, 1)
        with pytest.raises(ProtocolError):
            _ = view.neighbors
        with pytest.raises(ProtocolError):
            _ = view.closed_neighbors

    def test_whiteboard_reads_counted_through_view(self):
        g = path_graph(3)
        seen = {}

        class Reader(AgentProgram):
            def run(self, ctx):
                seen["board"] = ctx.view.whiteboard
                yield Halt()

        scheduler = SyncScheduler(g, Reader(), Idle(), 0, 2, max_rounds=5)
        scheduler.run()
        assert seen["board"] is None
        assert scheduler.whiteboards.reads == 1

    def test_multi_view_co_location(self):
        g = complete_graph(4)
        engine = Engine(
            g, (Idle(), Idle(), Idle()), (0, 1, 0),
            names=("x", "y", "z"), multi_view=True,
        )
        x_view = engine.drivers[0].ctx.view
        assert isinstance(x_view, MultiAgentView)
        assert x_view.co_located_agents == ("z",)
        assert x_view.other_agent_here
        y_view = engine.drivers[1].ctx.view
        assert y_view.co_located_agents == ()
        assert not y_view.other_agent_here


class TestDispatchEdges:
    def test_run_pair_requires_two_agents(self):
        g = path_graph(4)
        engine = Engine(
            g, (Idle(), Idle(), Idle()), (0, 1, 2), names=("a", "b", "c")
        )
        with pytest.raises(SchedulerError):
            engine.run_pair()

    def test_move_subclass_treated_like_move(self):
        """Exotic Action subclasses take the seed isinstance slow path."""

        class TaggedMove(Move):
            pass

        g = path_graph(3)
        result = SyncScheduler(
            g, Scripted([TaggedMove(1, write="mark")]), Idle(), 0, 1,
            max_rounds=10,
        ).run()
        assert result.met
        assert result.moves["a"] == 1
        assert result.whiteboard_writes == 1

    def test_stay_subclass_in_multi_loop(self):
        class TaggedStay(Stay):
            pass

        g = path_graph(4)
        result = MultiAgentScheduler(
            g,
            [Scripted([TaggedStay(write=7), Move(1)]), Idle(), Idle()],
            [0, 1, 3],
            termination="pair",
            max_rounds=10,
        ).run()
        assert result.completed
        assert result.whiteboard_writes == 1

    def test_kt0_out_of_range_port_message(self):
        g = cycle_graph(5)
        with pytest.raises(ProtocolError, match="port 9 out of range at vertex 0"):
            SyncScheduler(
                g, Scripted([Move(9)]), Idle(), 0, 2,
                port_model=PortModel.KT0, max_rounds=10,
            ).run()

    def test_kt1_non_neighbor_message(self):
        g = path_graph(4)
        with pytest.raises(
            ProtocolError, match="agent at 0 tried to move to non-neighbor 3"
        ):
            SyncScheduler(g, Scripted([Move(3)]), Idle(), 0, 2, max_rounds=10).run()

    def test_facade_exposes_live_slots(self):
        """Oracles introspect positions through the façade's slots."""
        g = path_graph(4)
        scheduler = SyncScheduler(
            g, Scripted([Move(1), Move(2)]), Idle(), 0, 3, max_rounds=10
        )
        assert [d.position for d in scheduler.drivers] == [0, 3]
        result = scheduler.run()
        assert scheduler._a.position == 2
        assert scheduler.current_round == result.rounds
