"""Tests for agent views, actions, whiteboard stores, and helpers."""

from __future__ import annotations

import pytest

from repro.errors import ProtocolError, WhiteboardDisabledError
from repro.graphs.generators import cycle_graph, path_graph
from repro.graphs.ports import PortModel
from repro.runtime.actions import Halt, KEEP, Move, Stay, WaitUntil
from repro.runtime.agent import AgentProgram, stay_rounds, walk, walk_and_return
from repro.runtime.scheduler import SyncScheduler
from repro.runtime.whiteboard import BLANK, DisabledWhiteboards, WhiteboardStore


class TestActions:
    def test_keep_sentinel_is_singleton(self):
        assert Stay().write is KEEP
        assert Move(3).write is KEEP
        assert repr(KEEP) == "KEEP"

    def test_none_is_a_writable_value(self):
        action = Stay(write=None)
        assert action.write is None
        assert action.write is not KEEP

    def test_reprs(self):
        assert repr(Stay()) == "Stay()"
        assert "Move(3" in repr(Move(3))
        assert repr(WaitUntil(9)) == "WaitUntil(9)"
        assert repr(Halt()) == "Halt()"

    def test_wait_until_coerces_int(self):
        assert WaitUntil(7.0).round == 7


class TestWhiteboardStore:
    def test_blank_default(self):
        store = WhiteboardStore()
        assert store.read(0) is BLANK

    def test_write_read_counters(self):
        store = WhiteboardStore()
        store.write(3, "x")
        assert store.read(3) == "x"
        assert store.writes == 1
        assert store.reads == 1

    def test_peek_does_not_count(self):
        store = WhiteboardStore()
        store.write(1, "y")
        assert store.peek(1) == "y"
        assert store.reads == 0

    def test_written_vertices(self):
        store = WhiteboardStore()
        store.write(1, "a")
        store.write(5, "b")
        assert store.written_vertices() == frozenset({1, 5})

    def test_disabled_store(self):
        store = DisabledWhiteboards()
        with pytest.raises(WhiteboardDisabledError):
            store.read(0)
        with pytest.raises(WhiteboardDisabledError):
            store.write(0, "x")
        assert not store.enabled
        assert WhiteboardStore().enabled


class _Probe(AgentProgram):
    """Captures view attributes for assertions."""

    def __init__(self):
        self.seen = {}

    def run(self, ctx):
        view = ctx.view
        self.seen["vertex"] = view.vertex
        self.seen["degree"] = view.degree
        self.seen["neighbors"] = view.neighbors
        self.seen["ports"] = view.ports
        self.seen["closed"] = view.closed_neighbors
        self.seen["round"] = view.round
        yield Move(view.neighbors[0])
        self.seen["after_vertex"] = ctx.view.vertex
        self.seen["after_round"] = ctx.view.round
        yield Halt()


class _Idle(AgentProgram):
    def run(self, ctx):
        yield Halt()


class TestAgentView:
    def test_live_view_tracks_movement(self):
        g = cycle_graph(6)
        probe = _Probe()
        SyncScheduler(g, probe, _Idle(), 0, 3, max_rounds=10).run()
        assert probe.seen["vertex"] == 0
        assert probe.seen["degree"] == 2
        assert probe.seen["neighbors"] == (1, 5)
        assert probe.seen["ports"] == (1, 5)
        assert probe.seen["closed"] == frozenset({0, 1, 5})
        assert probe.seen["round"] == 0
        assert probe.seen["after_vertex"] == 1
        assert probe.seen["after_round"] == 1

    def test_kt0_view_hides_neighbor_ids(self):
        g = cycle_graph(6)

        class Kt0Probe(AgentProgram):
            def __init__(self):
                self.error = None
                self.ports = None

            def run(self, ctx):
                self.ports = ctx.view.ports
                try:
                    _ = ctx.view.neighbors
                except ProtocolError as exc:
                    self.error = exc
                yield Halt()

        probe = Kt0Probe()
        SyncScheduler(
            g, probe, _Idle(), 0, 3, port_model=PortModel.KT0, max_rounds=10
        ).run()
        assert probe.ports == (0, 1)
        assert probe.error is not None

    def test_other_agent_here(self):
        g = path_graph(2)

        class Checker(AgentProgram):
            def __init__(self):
                self.flag = None

            def run(self, ctx):
                self.flag = ctx.view.other_agent_here
                yield Halt()

        checker = Checker()
        SyncScheduler(g, checker, _Idle(), 0, 1, max_rounds=5).run()
        assert checker.flag is False


class TestWalkHelpers:
    def test_walk_skips_current_vertex(self):
        g = path_graph(4)

        class Walker(AgentProgram):
            def __init__(self):
                self.rounds_used = None

            def run(self, ctx):
                start_round = ctx.view.round
                yield from walk(ctx, [0, 1, 2])  # first hop is a no-op
                self.rounds_used = ctx.view.round - start_round
                yield Halt()

        walker = Walker()
        SyncScheduler(g, walker, _Idle(), 0, 3, max_rounds=20).run()
        assert walker.rounds_used == 2

    def test_walk_and_return(self):
        g = path_graph(4)

        class OutAndBack(AgentProgram):
            def __init__(self):
                self.positions = []

            def run(self, ctx):
                yield from walk_and_return(ctx, [1, 2])
                self.positions.append(ctx.view.vertex)
                yield Halt()

        program = OutAndBack()
        SyncScheduler(g, program, _Idle(), 0, 3, max_rounds=20).run()
        assert program.positions == [0]

    def test_stay_rounds(self):
        g = path_graph(3)

        class Sitter(AgentProgram):
            def __init__(self):
                self.elapsed = None

            def run(self, ctx):
                start = ctx.view.round
                yield from stay_rounds(5)
                self.elapsed = ctx.view.round - start
                yield Halt()

        sitter = Sitter()
        SyncScheduler(g, sitter, _Idle(), 0, 2, max_rounds=20).run()
        assert sitter.elapsed == 5
