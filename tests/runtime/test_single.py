"""Tests for the single-agent driver."""

from __future__ import annotations

import pytest

from repro.errors import ProtocolError
from repro.graphs.generators import cycle_graph, path_graph
from repro.runtime.actions import Halt, Move, Stay, WaitUntil
from repro.runtime.agent import AgentProgram
from repro.runtime.single import run_single_agent


class LineWalker(AgentProgram):
    def run(self, ctx):
        while True:
            neighbors = ctx.view.neighbors
            bigger = [u for u in neighbors if u > ctx.view.vertex]
            if not bigger:
                yield Halt()
                return
            yield Move(bigger[0])


class TestRunSingleAgent:
    def test_walk_records_positions(self):
        g = path_graph(5)
        rec = run_single_agent(LineWalker(), g, 0, rounds=10)
        assert rec.positions[:5] == (0, 1, 2, 3, 4)
        assert rec.visited == (0, 1, 2, 3, 4)
        assert rec.halted

    def test_round_budget_stops_run(self):
        g = path_graph(10)
        rec = run_single_agent(LineWalker(), g, 0, rounds=3)
        assert rec.rounds == 3
        assert rec.visited == (0, 1, 2, 3)
        assert not rec.halted

    def test_visited_set(self):
        g = cycle_graph(4)

        class BackAndForth(AgentProgram):
            def run(self, ctx):
                yield Move(1)
                yield Move(0)
                yield Move(1)

        rec = run_single_agent(BackAndForth(), g, 0, rounds=10)
        assert rec.visited_set == frozenset({0, 1})

    def test_stay_and_wait(self):
        g = path_graph(3)

        class Lazy(AgentProgram):
            def run(self, ctx):
                yield Stay()
                yield WaitUntil(7)
                yield Move(1)

        rec = run_single_agent(Lazy(), g, 0, rounds=20)
        assert rec.positions[-1] == 1
        assert rec.rounds == 8

    def test_illegal_move_raises(self):
        g = path_graph(4)

        class Teleporter(AgentProgram):
            def run(self, ctx):
                yield Move(3)

        with pytest.raises(ProtocolError):
            run_single_agent(Teleporter(), g, 0, rounds=5)

    def test_whiteboard_access_forbidden(self):
        g = path_graph(3)

        class Toucher(AgentProgram):
            def run(self, ctx):
                _ = ctx.view.whiteboard
                yield Halt()

        with pytest.raises(ProtocolError):
            run_single_agent(Toucher(), g, 0, rounds=5)

    def test_on_arrival_hook_called(self):
        calls = []

        class HookedGraph:
            def __init__(self, graph):
                self._graph = graph

            def neighbors(self, v):
                return self._graph.neighbors(v)

            def on_arrival(self, v, round_number):
                calls.append((v, round_number))

        g = HookedGraph(path_graph(4))
        run_single_agent(LineWalker(), g, 0, rounds=10)
        assert calls[0] == (0, 0)
        assert (1, 1) in calls and (2, 2) in calls
