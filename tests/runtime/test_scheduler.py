"""Tests for the synchronous scheduler: semantics, fast-forward, metrics."""

from __future__ import annotations

import pytest

from repro.errors import ProtocolError, SchedulerError
from repro.graphs.generators import complete_graph, cycle_graph, path_graph
from repro.graphs.ports import PortLabeling, PortModel
from repro.runtime.actions import Halt, Move, Stay, WaitUntil
from repro.runtime.agent import AgentProgram
from repro.runtime.scheduler import SyncScheduler


class Scripted(AgentProgram):
    """Yields a fixed list of actions, then halts."""

    def __init__(self, actions):
        self._actions = list(actions)

    def run(self, ctx):
        for action in self._actions:
            yield action


class Idle(AgentProgram):
    def run(self, ctx):
        yield Halt()


def run_on(graph, prog_a, prog_b, sa, sb, **kw):
    kw.setdefault("max_rounds", 1000)
    return SyncScheduler(graph, prog_a, prog_b, sa, sb, **kw).run()


class TestMeetingSemantics:
    def test_move_onto_waiting_agent(self):
        g = path_graph(3)
        result = run_on(g, Scripted([Move(1)]), Idle(), 0, 1)
        assert result.met
        assert result.rounds == 1  # co-located at the beginning of round 1
        assert result.meeting_vertex == 1

    def test_simultaneous_swap_does_not_meet(self):
        """Agents crossing the same edge in one round pass each other."""
        g = path_graph(2)
        result = run_on(g, Scripted([Move(1)]), Scripted([Move(0)]), 0, 1)
        # They swapped endpoints; positions never coincide at round start.
        assert not result.met
        assert result.failure_reason == "both agents halted without meeting"

    def test_meeting_mid_path(self):
        g = path_graph(5)
        result = run_on(
            g, Scripted([Move(1), Move(2)]), Scripted([Move(3), Move(2)]), 0, 4
        )
        assert result.met
        assert result.meeting_vertex == 2
        assert result.rounds == 2

    def test_same_start_rejected(self):
        with pytest.raises(SchedulerError):
            SyncScheduler(path_graph(3), Idle(), Idle(), 1, 1)

    def test_start_outside_graph_rejected(self):
        with pytest.raises(SchedulerError):
            SyncScheduler(path_graph(3), Idle(), Idle(), 0, 9)


class TestRoundAccounting:
    def test_round_budget(self):
        g = cycle_graph(4)

        class Circler(AgentProgram):
            def run(self, ctx):
                while True:
                    yield Move(ctx.view.neighbors[0])

        result = run_on(g, Circler(), Idle(), 0, 2, max_rounds=17)
        assert not result.met
        assert result.rounds == 17
        assert result.failure_reason == "round budget exhausted"

    def test_moves_counted(self):
        g = path_graph(4)
        result = run_on(g, Scripted([Move(1), Move(2), Move(3)]), Idle(), 0, 3)
        assert result.met
        assert result.moves["a"] == 3
        assert result.moves["b"] == 0
        assert result.total_moves == 3

    def test_stay_is_one_round(self):
        g = path_graph(3)
        result = run_on(g, Scripted([Stay(), Move(1)]), Idle(), 0, 1)
        assert result.met
        assert result.rounds == 2


class TestFastForward:
    def test_both_waiting_jumps_clock(self):
        g = path_graph(3)

        class Waiter(AgentProgram):
            def __init__(self, until, then_move=None):
                self._until = until
                self._move = then_move

            def run(self, ctx):
                yield WaitUntil(self._until)
                if self._move is not None:
                    yield Move(self._move)

        result = run_on(g, Waiter(100_000, then_move=1), Waiter(200_000), 0, 1,
                        max_rounds=300_000)
        assert result.met
        assert result.rounds == 100_001

    def test_wait_in_past_acts_as_stay(self):
        g = path_graph(3)
        result = run_on(g, Scripted([WaitUntil(0), Move(1)]), Idle(), 0, 1)
        assert result.met
        assert result.rounds == 2

    def test_halted_pair_terminates(self):
        g = path_graph(3)
        result = run_on(g, Idle(), Idle(), 0, 2, max_rounds=10**9)
        assert not result.met
        assert result.halted == {"a": True, "b": True}

    def test_generator_exhaustion_is_halt(self):
        g = path_graph(3)
        result = run_on(g, Scripted([]), Idle(), 0, 2, max_rounds=50)
        assert not result.met
        assert result.halted["a"]


class TestMovementValidation:
    def test_illegal_move_raises(self):
        g = path_graph(4)
        with pytest.raises(ProtocolError):
            run_on(g, Scripted([Move(3)]), Idle(), 0, 2)

    def test_kt1_self_move_is_stay(self):
        g = path_graph(3)
        result = run_on(g, Scripted([Move(0), Move(1)]), Idle(), 0, 1)
        assert result.met
        assert result.rounds == 2
        assert result.moves["a"] == 1

    def test_non_action_yield_raises(self):
        g = path_graph(3)
        with pytest.raises(ProtocolError):
            run_on(g, Scripted(["go"]), Idle(), 0, 2)

    def test_kt0_moves_by_port_index(self):
        g = cycle_graph(5)
        labeling = PortLabeling(g)  # ascending order: port 0 -> smaller id

        class PortMover(AgentProgram):
            def run(self, ctx):
                yield Move(0)  # port 0 at vertex 0 -> neighbor 1 (ascending)

        result = SyncScheduler(
            g, PortMover(), Idle(), 0, 1,
            port_model=PortModel.KT0, labeling=labeling, max_rounds=10,
        ).run()
        assert result.met


class TestWhiteboards:
    def test_write_then_read(self):
        g = path_graph(3)

        class Writer(AgentProgram):
            def run(self, ctx):
                yield Stay(write="hello")
                yield Move(1)

        class Reader(AgentProgram):
            def __init__(self):
                self.saw = None

            def run(self, ctx):
                yield Stay()
                yield Stay()
                self.saw = ctx.view.whiteboard
                yield Halt()

        # a writes at 0 then leaves; b walks to 0 later and reads.
        writer = Writer()

        class GoRead(AgentProgram):
            def __init__(self):
                self.saw = "unset"

            def run(self, ctx):
                yield Stay()
                yield Move(1)
                yield Move(0)
                self.saw = ctx.view.whiteboard
                yield Halt()

        reader = GoRead()
        result = SyncScheduler(
            g, Writer(), reader, 0, 2, max_rounds=50
        ).run()
        # a moved 0 -> 1; b moved 2 -> 1 meanwhile: they met at 1 before
        # the read; rerun with a staying away.
        assert result.met or reader.saw == "hello"

    def test_write_counted(self):
        g = path_graph(4)
        result = run_on(g, Scripted([Stay(write=7), Stay(write=8)]), Idle(), 0, 3)
        assert result.whiteboard_writes == 2

    def test_move_write_applies_at_origin(self):
        g = path_graph(3)

        class WriteAndGo(AgentProgram):
            def run(self, ctx):
                yield Move(1, write="left-behind")
                yield Halt()

        scheduler = SyncScheduler(g, WriteAndGo(), Idle(), 0, 2, max_rounds=10)
        scheduler.run()
        assert scheduler.whiteboards.peek(0) == "left-behind"
        assert scheduler.whiteboards.peek(1) is None

    def test_disabled_whiteboards_raise(self):
        from repro.errors import WhiteboardDisabledError

        g = path_graph(3)

        class Toucher(AgentProgram):
            def run(self, ctx):
                _ = ctx.view.whiteboard
                yield Halt()

        with pytest.raises(WhiteboardDisabledError):
            run_on(g, Toucher(), Idle(), 0, 2, whiteboards=False)


class TestTraceAndReports:
    def test_trace_records_positions(self):
        g = path_graph(4)
        result = run_on(
            g, Scripted([Move(1), Move(2), Move(3)]), Idle(), 0, 3,
            record_trace=True,
        )
        assert result.trace is not None
        assert result.trace[0] == (0, 1, 3)

    def test_reports_come_from_programs(self):
        class Reporting(AgentProgram):
            def run(self, ctx):
                yield Halt()

            def report(self):
                return {"custom": 42}

        g = path_graph(3)
        result = run_on(g, Reporting(), Idle(), 0, 2, max_rounds=5)
        assert result.reports["a"] == {"custom": 42}
        assert result.reports["b"] == {}
