"""Differential fuzz suite for the lockstep executor.

The lockstep route (:mod:`repro.runtime.lockstep`) must be *invisible*:
for every eligible batch, :func:`repro.experiments.harness.run_trials`
has to return records byte-identical to both

* the serial engine path (``REPRO_LOCKSTEP=0`` — the façade +
  ``Engine.reset`` loop), and
* the frozen second-tier oracle
  :func:`repro.runtime.reference.reference_run_trials`,

and every ineligible batch must fall back to the serial path with no
observable difference.  These tests sweep a randomized matrix — every
registered algorithm × both port models × several graph families ×
shuffled KT0 labelings × dilated ID spaces × mixed/duplicate seed
batches — comparing the JSON byte encoding of whole record batches,
plus call-for-call RNG-tape pinning against the serial draw sequence
(including under ``fork`` and ``spawn`` start methods).
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import random

import pytest

from repro.core.api import ALGORITHMS
from repro.core.constants import Constants
from repro.errors import ProtocolError
from repro.experiments.harness import run_trial, run_trials
from repro.experiments.results_io import record_to_jsonable
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    dilate_id_space,
    powerlaw_graph_with_floor,
    random_graph_with_min_degree,
    random_regular_graph,
)
from repro.graphs.graph import StaticGraph
from repro.graphs.ports import PortLabeling, PortModel
from repro.runtime.lockstep import (
    LOCKSTEP_ENV,
    lockstep_enabled,
    lockstep_supported,
    run_lockstep_batch,
    walk_choice_tape,
)
from repro.runtime.plan import ExecutionPlan
from repro.runtime.reference import ReferenceSyncScheduler, reference_run_trials


def _record_bytes(records) -> bytes:
    """Whole-batch JSON encoding — the byte-equality currency."""
    return b"\n".join(
        json.dumps(record_to_jsonable(r), sort_keys=True).encode()
        for r in records
    )


def _classic(graph, algorithm, seeds, **kwargs):
    """The serial engine batch path, with the lockstep route forced off."""
    previous = os.environ.get(LOCKSTEP_ENV)
    os.environ[LOCKSTEP_ENV] = "0"
    try:
        return run_trials(graph, algorithm, seeds, **kwargs)
    finally:
        if previous is None:
            del os.environ[LOCKSTEP_ENV]
        else:
            os.environ[LOCKSTEP_ENV] = previous


def _assert_all_paths_identical(graph, algorithm, seeds, **kwargs):
    """Lockstep-routed, serial-engine, and frozen-oracle records agree."""
    routed = run_trials(graph, algorithm, seeds, **kwargs)
    serial = _classic(graph, algorithm, seeds, **kwargs)
    oracle = reference_run_trials(graph, algorithm, seeds, **kwargs)
    assert _record_bytes(routed) == _record_bytes(serial), (
        f"{algorithm} lockstep batch diverged from the serial engine"
    )
    assert _record_bytes(routed) == _record_bytes(oracle), (
        f"{algorithm} lockstep batch diverged from the frozen oracle"
    )
    return routed


def _fuzz_graphs():
    """The graph-family axis, including a dilated-ID-space instance."""
    rng = random.Random("lockstep-fuzz-graphs")
    graphs = [
        random_graph_with_min_degree(64, 9, rng),
        random_regular_graph(48, 7, rng),
        cycle_graph(40),
        complete_graph(18),
        powerlaw_graph_with_floor(56, 4, rng),
    ]
    graphs.append(dilate_id_space(graphs[0], 13, random.Random("dilate")))
    return graphs


class TestDifferentialFuzzMatrix:
    """Every algorithm × both port models × randomized instances."""

    @pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
    @pytest.mark.parametrize("port_model", [PortModel.KT1, PortModel.KT0])
    def test_full_matrix_byte_identical(self, algorithm, port_model):
        constants = Constants.testing()
        rng = random.Random(f"matrix:{algorithm}:{port_model}")
        graph = random_graph_with_min_degree(60, 12, rng)
        labeling = (
            PortLabeling(graph, rng=rng)
            if port_model is PortModel.KT0
            else None
        )
        seeds = [0, 3, 3, 11]  # duplicates included on purpose
        kwargs = dict(
            constants=constants, port_model=port_model, labeling=labeling
        )
        try:
            expected = _classic(graph, algorithm, seeds, **kwargs)
            failed = None
        except ProtocolError as error:
            expected, failed = None, error
        if failed is not None:
            # KT1-only algorithms must raise identically via the route.
            with pytest.raises(ProtocolError) as info:
                run_trials(graph, algorithm, seeds, **kwargs)
            assert str(info.value) == str(failed)
            return
        routed = run_trials(graph, algorithm, seeds, **kwargs)
        oracle = reference_run_trials(graph, algorithm, seeds, **kwargs)
        assert _record_bytes(routed) == _record_bytes(expected)
        assert _record_bytes(routed) == _record_bytes(oracle)

    @pytest.mark.parametrize("port_model", [PortModel.KT1, PortModel.KT0])
    def test_walk_fuzz_across_families(self, port_model):
        """Random walks over every family, shuffled KT0 labelings."""
        rng = random.Random(f"walk-fuzz:{port_model}")
        for graph in _fuzz_graphs():
            labeling = (
                PortLabeling(graph, rng=rng)
                if port_model is PortModel.KT0
                else None
            )
            seeds = [rng.randrange(1000) for _ in range(rng.randrange(1, 6))]
            cap = rng.choice([25, 200, 2500])
            _assert_all_paths_identical(
                graph, "random-walk", seeds,
                max_rounds=cap, port_model=port_model, labeling=labeling,
            )

    def test_trivial_fuzz_across_families(self):
        rng = random.Random("trivial-fuzz")
        for graph in _fuzz_graphs():
            seeds = [rng.randrange(1000) for _ in range(4)]
            # Caps straddle the probe's 2·deg + 1 halting timeline so
            # met, budget-exhausted, and both-halted outcomes all occur.
            for cap in (None, 3, 2 * graph.max_degree + 16):
                _assert_all_paths_identical(
                    graph, "trivial", seeds, max_rounds=cap
                )

    def test_seeds_retire_at_different_rounds(self):
        """One batch mixing early meetings with max_rounds exhaustion."""
        graph = random_regular_graph(36, 5, random.Random("retire"))
        records = _assert_all_paths_identical(
            graph, "random-walk", list(range(12)), max_rounds=120
        )
        met_rounds = sorted({r.rounds for r in records if r.met})
        capped = [r for r in records if not r.met]
        assert len(met_rounds) > 1, "want meetings at distinct rounds"
        assert capped, "want at least one seed hitting max_rounds"
        assert all(r.rounds == 120 for r in capped)

    def test_explicit_starts_and_plan(self):
        graph = random_graph_with_min_degree(50, 10, random.Random("starts"))
        start_a = graph.vertices[0]
        start_b = graph.neighbors(start_a)[0]
        plan = ExecutionPlan.compile(graph)
        _assert_all_paths_identical(
            graph, "random-walk", [2, 4, 8],
            plan=plan, start_a=start_a, start_b=start_b, max_rounds=600,
        )


class TestTapePinning:
    """The pre-drawn tapes replay the serial RNG streams call-for-call."""

    def test_tape_reproduces_serial_draw_sequence(self):
        """walk_choice_tape == hand-replayed random()/randrange() calls."""
        graph = random_graph_with_min_degree(40, 6, random.Random("tape"))
        plan = ExecutionPlan.compile(graph)
        offsets = list(plan.neighbor_offsets)
        table = list(plan.neighbor_indices)
        degrees = list(plan.degrees)
        bits = [d.bit_length() for d in degrees]
        for seed in range(5):
            serial_rng = random.Random(f"{seed}:a")
            pos, expected = 7, []
            for _ in range(400):
                if serial_rng.random() < 0.5:
                    expected.append(pos)
                else:
                    port = serial_rng.randrange(degrees[pos])
                    pos = table[offsets[pos] + port]
                    expected.append(pos)
            tape_rng = random.Random(f"{seed}:a")
            tape, moves = walk_choice_tape(
                tape_rng, 7, 400, offsets, table, degrees, bits, 0.5
            )
            assert tape == expected, f"seed {seed} tape diverged"
            assert moves == sum(
                1 for prev, cur in zip([7, *tape], tape) if prev != cur
            )
            # Call-for-call: the generators end in the same exact state.
            assert tape_rng.getstate() == serial_rng.getstate()

    def test_tape_matches_reference_scheduler_trace(self):
        """Tape positions == the frozen scheduler's per-round trace."""
        from repro.baselines.random_walk import RandomWalker

        graph = random_regular_graph(30, 4, random.Random("trace"))
        plan = ExecutionPlan.compile(graph)
        ids = plan.ids
        offsets = list(plan.neighbor_offsets)
        table = list(plan.neighbor_indices)
        degrees = list(plan.degrees)
        bits = [d.bit_length() for d in degrees]
        seed = 3
        result = ReferenceSyncScheduler(
            graph, RandomWalker(), RandomWalker(), ids[0], ids[1],
            seed=seed, whiteboards=False, max_rounds=500, record_trace=True,
        ).run()
        for name, start in (("a", 0), ("b", 1)):
            tape, _ = walk_choice_tape(
                random.Random(f"{seed}:{name}"), start, result.rounds,
                offsets, table, degrees, bits, 0.5,
            )
            column = 1 if name == "a" else 2
            for entry in result.trace:
                rnd = entry[0]
                assert ids[tape[rnd]] == entry[column], (
                    f"agent {name} diverged from the trace at round {rnd}"
                )

    def test_tapes_byte_identical_across_start_methods(self):
        """fork and spawn children draw the exact same tapes."""
        for method in ("fork", "spawn"):
            if method not in multiprocessing.get_all_start_methods():
                continue
            for case in [("er", 48, 8, 0), ("regular", 36, 6, 1)]:
                child = _tape_digest_in_subprocess(method, case)
                assert child == _tape_digest(*case), (
                    f"{case} tape diverged under the {method} start method"
                )


def _tape_digest(family: str, n: int, delta: int, seed: int) -> str:
    """SHA-256 over both agents' tapes for one deterministic instance."""
    rng = random.Random(f"tape-determinism:{family}:{n}:{delta}:{seed}")
    if family == "regular":
        graph = random_regular_graph(n, delta, rng)
    else:
        graph = random_graph_with_min_degree(n, delta, rng)
    plan = ExecutionPlan.compile(graph)
    offsets = list(plan.neighbor_offsets)
    table = list(plan.neighbor_indices)
    degrees = list(plan.degrees)
    bits = [d.bit_length() for d in degrees]
    digest = hashlib.sha256()
    for name, start in (("a", 0), ("b", 1)):
        tape, moves = walk_choice_tape(
            random.Random(f"{seed}:{name}"), start, 2_000,
            offsets, table, degrees, bits, 0.5,
        )
        digest.update(json.dumps([moves, tape]).encode())
    return digest.hexdigest()


def _tape_digest_child(queue, family, n, delta, seed):
    try:
        queue.put(("ok", _tape_digest(family, n, delta, seed)))
    except Exception as error:  # pragma: no cover - surfaced as test failure
        queue.put(("error", repr(error)))


def _tape_digest_in_subprocess(method: str, case: tuple) -> str:
    context = multiprocessing.get_context(method)
    queue = context.Queue()
    process = context.Process(target=_tape_digest_child, args=(queue, *case))
    process.start()
    try:
        status, payload = queue.get(timeout=60)
    finally:
        process.join(timeout=10)
    assert status == "ok", payload
    return payload


class TestFallback:
    """Ineligible batches take the serial path with identical results."""

    def test_static_eligibility(self):
        assert lockstep_supported("random-walk", PortModel.KT1)
        assert lockstep_supported("random-walk", PortModel.KT0)
        assert lockstep_supported("trivial", PortModel.KT1)
        assert not lockstep_supported("trivial", PortModel.KT0)
        for algorithm in ("theorem1", "theorem2", "explore", "anderson-weber"):
            assert not lockstep_supported(algorithm, PortModel.KT1)
            assert not lockstep_supported(algorithm, PortModel.KT0)

    def test_unsupported_algorithm_returns_none(self):
        graph = cycle_graph(16)
        assert run_lockstep_batch(graph, "theorem1", [0, 1]) is None
        assert run_lockstep_batch(graph, "explore", [0, 1]) is None

    def test_degree_zero_vertex_falls_back(self):
        """An isolated vertex bails out of lockstep but not run_trials."""
        graph = StaticGraph({0: [1, 2], 1: [0, 2], 2: [0, 1], 9: []})
        plan = ExecutionPlan.compile(graph)
        assert run_lockstep_batch(
            graph, "random-walk", [0, 1],
            plan=plan, start_a=0, start_b=1, max_rounds=50,
        ) is None
        batched = run_trials(
            graph, "random-walk", [0, 1],
            plan=plan, start_a=0, start_b=1, max_rounds=50,
            check_instance=False,
        )
        serial = [
            run_trial(
                graph, "random-walk", seed,
                plan=plan, start_a=0, start_b=1, max_rounds=50,
                check_instance=False,
            )
            for seed in [0, 1]
        ]
        assert _record_bytes(batched) == _record_bytes(serial)

    def test_env_opt_out(self, monkeypatch):
        monkeypatch.setenv(LOCKSTEP_ENV, "0")
        assert not lockstep_enabled()
        graph = cycle_graph(24)
        batched = run_trials(graph, "random-walk", [0, 5], max_rounds=200)
        serial = [
            run_trial(graph, "random-walk", seed, max_rounds=200)
            for seed in [0, 5]
        ]
        assert _record_bytes(batched) == _record_bytes(serial)
        for value in ("", "1", "on", "yes"):
            monkeypatch.setenv(LOCKSTEP_ENV, value)
            assert lockstep_enabled()
        for value in ("0", "off", "no", " OFF "):
            monkeypatch.setenv(LOCKSTEP_ENV, value)
            assert not lockstep_enabled()


class TestSeedListEdgeCases:
    """Empty and length-1 batches, on both the lockstep and serial paths."""

    @pytest.mark.parametrize("env_value", ["1", "0"])
    @pytest.mark.parametrize("algorithm", ["random-walk", "theorem1"])
    def test_empty_seed_list(self, monkeypatch, env_value, algorithm):
        monkeypatch.setenv(LOCKSTEP_ENV, env_value)
        graph = cycle_graph(12)
        assert run_trials(graph, algorithm, []) == []
        assert run_trials(graph, algorithm, range(0)) == []

    @pytest.mark.parametrize("env_value", ["1", "0"])
    @pytest.mark.parametrize("algorithm", ["random-walk", "trivial"])
    def test_single_seed_batch(self, monkeypatch, env_value, algorithm):
        monkeypatch.setenv(LOCKSTEP_ENV, env_value)
        graph = random_graph_with_min_degree(40, 8, random.Random("one"))
        batched = run_trials(graph, algorithm, [7], max_rounds=400)
        assert _record_bytes(batched) == _record_bytes(
            [run_trial(graph, algorithm, 7, max_rounds=400)]
        )
