"""Tests for execution-trace analysis."""

from __future__ import annotations

import pytest

from repro.analysis.trace_tools import (
    distance_series,
    movement_rate,
    near_misses,
    occupancy,
    trace_stats,
)
from repro.core.api import rendezvous
from repro.graphs.generators import complete_graph, path_graph


def synthetic_trace():
    # path 0-1-2-3-4: a walks right, b stays at 4.
    return (
        (0, 1, 4),
        (1, 2, 4),
        (2, 3, 4),
        (3, 4, 4),
    )


class TestPrimitives:
    def test_occupancy(self):
        occ_a, occ_b = occupancy(synthetic_trace())
        assert occ_a == {1: 1, 2: 1, 3: 1, 4: 1}
        assert occ_b == {4: 4}

    def test_distance_series(self):
        g = path_graph(5)
        assert distance_series(g, synthetic_trace()) == [3, 2, 1, 0]

    def test_near_misses(self):
        g = path_graph(5)
        assert near_misses(g, synthetic_trace()) == [2]

    def test_movement_rate(self):
        rate_a, rate_b = movement_rate(synthetic_trace())
        assert rate_a == 1.0
        assert rate_b == 0.0

    def test_movement_rate_short_trace(self):
        assert movement_rate(((0, 1, 2),)) == (0.0, 0.0)


class TestTraceStats:
    def test_summary(self):
        g = path_graph(5)
        stats = trace_stats(g, synthetic_trace())
        assert stats.rounds_recorded == 4
        assert stats.distinct_vertices_a == 4
        assert stats.distinct_vertices_b == 1
        assert stats.near_miss_count == 1
        assert stats.final_distance == 0

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            trace_stats(path_graph(3), ())

    def test_on_real_execution(self):
        g = complete_graph(30)
        result = rendezvous(
            g, "anderson-weber", seed=0, record_trace=True
        )
        assert result.met
        stats = trace_stats(g, result.trace)
        assert stats.rounds_recorded >= 1
        # Agent a probes out-and-back: it moves most rounds.
        assert stats.movement_rate_a > 0.3
