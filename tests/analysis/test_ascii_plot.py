"""Tests for the ASCII scatter plotter."""

from __future__ import annotations

from repro.analysis.ascii_plot import scatter_plot


class TestScatterPlot:
    def test_renders_markers_and_legend(self):
        text = scatter_plot(
            {"measured": [(10, 100), (100, 1000)], "bound": [(10, 50), (100, 500)]},
            title="demo",
        )
        assert "demo" in text
        assert "*=measured" in text
        assert "o=bound" in text
        assert "*" in text.splitlines()[3]  # inside the grid somewhere

    def test_axis_annotation(self):
        text = scatter_plot({"s": [(1, 1), (1000, 1000)]})
        assert "log10(x): [0.00, 3.00]" in text

    def test_linear_mode(self):
        text = scatter_plot({"s": [(0.5, 2), (1.5, 4)]}, log_x=False, log_y=False)
        assert "x: [0.50, 1.50]" in text

    def test_empty_series(self):
        assert "no positive data" in scatter_plot({"s": []}, title="t")

    def test_non_positive_points_dropped(self):
        text = scatter_plot({"s": [(0, 5), (-1, 2), (10, 10)]})
        assert "log10(x): [1.00, 1.00]" in text

    def test_degenerate_range_does_not_crash(self):
        text = scatter_plot({"s": [(5, 5), (5, 5)]})
        assert "+" in text

    def test_grid_dimensions(self):
        text = scatter_plot({"s": [(1, 1), (10, 10)]}, width=20, height=5)
        lines = text.splitlines()
        border = [l for l in lines if l.startswith("+")]
        assert len(border) == 2
        assert len(border[0]) == 22
        rows = [l for l in lines if l.startswith("|")]
        assert len(rows) == 5
