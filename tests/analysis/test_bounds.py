"""Tests for the closed-form theoretical bounds."""

from __future__ import annotations

import math

import pytest

from repro.analysis import bounds


class TestBoundShapes:
    def test_theorem1_decreasing_in_delta(self):
        n, Delta = 10_000, 5_000
        values = [bounds.theorem1_bound(n, d, Delta) for d in (100, 400, 1600)]
        assert values[0] > values[1] > values[2]

    def test_theorem1_terms_add(self):
        n, d, Delta = 4096, 512, 1024
        assert bounds.theorem1_bound(n, d, Delta) == pytest.approx(
            bounds.theorem1_construct_bound(n, d)
            + bounds.theorem1_meeting_bound(n, d, Delta)
        )

    def test_theorem2_phase_bound(self):
        assert bounds.theorem2_phase_bound(10_000, 400) == pytest.approx(
            10_000 * math.log(10_000) ** 2 / 20.0
        )

    def test_theorem2_total_includes_barrier(self):
        total = bounds.theorem2_total_bound(1000, 100, c1=2.0)
        assert total > bounds.theorem2_phase_bound(1000, 100)

    def test_trivial_and_exploration(self):
        assert bounds.trivial_bound(512) == 512
        assert bounds.exploration_bound(100) == 198

    def test_anderson_weber(self):
        assert bounds.anderson_weber_bound(100) == 10

    def test_log_floor(self):
        # Tiny inputs never produce zero/negative logs.
        assert bounds.theorem1_bound(2, 1, 1) > 0


class TestThresholds:
    def test_theorem1_threshold(self):
        n = 10_000
        assert bounds.sublinear_threshold_theorem1(n) == pytest.approx(
            100 * math.log(n)
        )

    def test_theorem2_threshold_larger(self):
        for n in (10**3, 10**6):
            assert bounds.sublinear_threshold_theorem2(
                n
            ) > bounds.sublinear_threshold_theorem1(n)


class TestCrossover:
    def test_crossover_found_for_large_n(self):
        n = 10**6
        Delta = n - 1
        delta = bounds.crossover_delta(n, Delta)
        assert 1 < delta < n
        # At the crossover the bound roughly equals Delta.
        assert bounds.theorem1_bound(n, delta, Delta) == pytest.approx(
            Delta, rel=0.05
        )

    def test_crossover_monotone_sanity(self):
        n, Delta = 10**6, 10**6 - 1
        delta = bounds.crossover_delta(n, Delta)
        assert bounds.theorem1_bound(n, delta * 2, Delta) < Delta
        assert bounds.theorem1_bound(n, delta / 2, Delta) > Delta

    def test_no_crossover_cases(self):
        # Tiny n: the bound exceeds Delta everywhere -> returns hi.
        assert bounds.crossover_delta(4, 3) == pytest.approx(3, abs=0.5)
