"""Tests for power-law fitting and summary statistics."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.fitting import fit_power_law
from repro.analysis.stats import (
    PartialSummary,
    merge_partial_summaries,
    success_rate,
    summarize,
    wilson_interval,
)


class TestFitPowerLaw:
    def test_exact_power_law_recovered(self):
        xs = [10, 100, 1000, 10_000]
        ys = [3 * x ** 1.5 for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(1.5, abs=1e-9)
        assert fit.coefficient == pytest.approx(3.0, rel=1e-6)
        assert fit.r_squared == pytest.approx(1.0)

    def test_predict(self):
        fit = fit_power_law([1, 2, 4], [2, 4, 8])
        assert fit.predict(8) == pytest.approx(16.0, rel=1e-6)

    def test_non_positive_points_dropped(self):
        fit = fit_power_law([0, 1, 2, 4], [5, 2, 4, 8])
        assert fit.exponent == pytest.approx(1.0, abs=1e-9)

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            fit_power_law([1], [1])
        with pytest.raises(ValueError):
            fit_power_law([0, 0], [1, 1])

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            fit_power_law([1, 2], [1])

    @settings(max_examples=20, deadline=None)
    @given(
        exponent=st.floats(-2.0, 3.0),
        coefficient=st.floats(0.1, 50.0),
    )
    def test_property_round_trip(self, exponent, coefficient):
        xs = [2.0, 8.0, 32.0, 128.0]
        ys = [coefficient * x ** exponent for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(exponent, abs=1e-6)


class TestSummarize:
    def test_basic(self):
        s = summarize([1, 2, 3, 4, 5])
        assert s.count == 5
        assert s.mean == 3
        assert s.median == 3
        assert s.minimum == 1 and s.maximum == 5
        assert s.ci_low < 3 < s.ci_high

    def test_single_value(self):
        s = summarize([7])
        assert s.stdev == 0
        assert s.ci_low == s.ci_high == 7

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_ci_shrinks_with_samples(self):
        wide = summarize([0, 10] * 5)
        narrow = summarize([0, 10] * 50)
        assert (narrow.ci_high - narrow.ci_low) < (wide.ci_high - wide.ci_low)


class TestWilson:
    def test_full_success(self):
        lo, hi = wilson_interval(10, 10)
        assert lo > 0.6
        assert hi == pytest.approx(1.0)

    def test_zero_success(self):
        lo, hi = wilson_interval(0, 10)
        assert lo == 0.0
        assert hi < 0.4

    def test_half(self):
        lo, hi = wilson_interval(50, 100)
        assert lo < 0.5 < hi

    def test_validation(self):
        with pytest.raises(ValueError):
            wilson_interval(1, 0)
        with pytest.raises(ValueError):
            wilson_interval(5, 4)

    def test_success_rate(self):
        rate, (lo, hi) = success_rate([True, True, False, True])
        assert rate == 0.75
        assert lo < 0.75 < hi

    def test_success_rate_empty(self):
        with pytest.raises(ValueError):
            success_rate([])


class TestPartialSummary:
    def test_merge_matches_whole_data_summary(self):
        chunks = [[1.0, 2.0, 3.0], [10.0], [4.0, 5.0, 6.0, 7.0], [0.5, 0.25]]
        merged = merge_partial_summaries([PartialSummary.of(c) for c in chunks])
        whole = summarize([v for chunk in chunks for v in chunk])
        assert merged.count == whole.count
        assert merged.mean == pytest.approx(whole.mean)
        assert merged.stdev == pytest.approx(whole.stdev)
        assert merged.minimum == whole.minimum
        assert merged.maximum == whole.maximum
        lo, hi = merged.confidence_interval()
        assert lo == pytest.approx(whole.ci_low)
        assert hi == pytest.approx(whole.ci_high)

    def test_merge_is_order_insensitive(self):
        parts = [PartialSummary.of(c) for c in ([1, 2], [30, 40, 50], [6])]
        forward = merge_partial_summaries(parts)
        backward = merge_partial_summaries(list(reversed(parts)))
        assert forward.count == backward.count
        assert forward.mean == pytest.approx(backward.mean)
        assert forward.stdev == pytest.approx(backward.stdev)

    def test_single_value_chunk(self):
        part = PartialSummary.of([7])
        assert part.stdev == 0.0
        assert part.confidence_interval() == (7.0, 7.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            PartialSummary.of([])
        with pytest.raises(ValueError):
            merge_partial_summaries([])

    @given(
        st.lists(
            st.lists(
                st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
                min_size=1, max_size=20,
            ),
            min_size=1, max_size=6,
        )
    )
    @settings(max_examples=50)
    def test_merge_matches_whole_data_property(self, chunks):
        merged = merge_partial_summaries([PartialSummary.of(c) for c in chunks])
        whole = summarize([v for chunk in chunks for v in chunk])
        assert merged.count == whole.count
        assert merged.mean == pytest.approx(whole.mean, rel=1e-9, abs=1e-6)
        assert merged.stdev == pytest.approx(whole.stdev, rel=1e-9, abs=1e-6)


class TestGroupedMoments:
    def _records(self):
        from repro.experiments.harness import repeat_trials
        from repro.graphs.generators import complete_graph

        records = []
        for algorithm in ("trivial", "random-walk"):
            records.extend(
                repeat_trials(complete_graph(16), algorithm, range(3))
            )
        return records

    def test_matches_manual_sketches(self):
        from repro.analysis.stats import PartialSummary, grouped_moments

        records = self._records()
        moments = grouped_moments(records, by=("algorithm",))
        assert set(moments) == {("trivial",), ("random-walk",)}
        for (algorithm,), sketch in moments.items():
            values = [r.rounds for r in records if r.algorithm == algorithm and r.met]
            assert sketch == PartialSummary.of(values)

    def test_warehouse_source_equals_records_source(self, tmp_path):
        from repro.analysis.stats import grouped_moments
        from repro.experiments.warehouse import write_records_warehouse

        records = self._records()
        path = write_records_warehouse(records, tmp_path / "wh")
        assert grouped_moments(path) == grouped_moments(records)

    def test_met_only_toggle(self):
        from repro.analysis.stats import grouped_moments

        records = self._records()
        all_values = grouped_moments(records, by=("algorithm",), met_only=False)
        assert all_values[("trivial",)].count == 3
