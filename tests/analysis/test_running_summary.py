"""Tests for the streaming moment accumulator and record-stream folds."""

from __future__ import annotations

import random

import pytest

from repro.analysis.stats import PartialSummary, RunningSummary
from repro.experiments.harness import StreamSummary, repeat_trials
from repro.graphs.generators import complete_graph


class TestRunningSummary:
    def test_matches_batch_sketch(self):
        rng = random.Random(11)
        values = [rng.randrange(1000) for _ in range(200)]
        running = RunningSummary()
        running.extend(values)
        batch = PartialSummary.of(values)
        snapshot = running.to_partial()
        assert snapshot.count == batch.count
        assert snapshot.minimum == batch.minimum
        assert snapshot.maximum == batch.maximum
        assert snapshot.mean == pytest.approx(batch.mean, rel=1e-12)
        assert snapshot.m2 == pytest.approx(batch.m2, rel=1e-9)

    def test_merges_like_chunked_sketches(self):
        rng = random.Random(7)
        left = [rng.random() for _ in range(50)]
        right = [rng.random() for _ in range(13)]
        running = RunningSummary()
        running.extend(left + right)
        merged = PartialSummary.of(left).merge(PartialSummary.of(right))
        snapshot = running.to_partial()
        assert snapshot.mean == pytest.approx(merged.mean, rel=1e-12)
        assert snapshot.m2 == pytest.approx(merged.m2, rel=1e-9)

    def test_empty_snapshot_rejected(self):
        with pytest.raises(ValueError):
            RunningSummary().to_partial()


class TestStreamSummary:
    def records(self):
        return repeat_trials(complete_graph(24), "trivial", range(6))

    def test_summary_matches_materialized_records(self):
        records = self.records()
        stream = StreamSummary()
        for record in records:
            stream.add(record)
        summary = stream.summary()
        rounds = [r.rounds for r in records if r.met]
        assert summary.count == len(rounds)
        assert summary.mean == pytest.approx(sum(rounds) / len(rounds))
        assert stream.total == 6
        assert stream.met == len(rounds)

    def test_out_of_order_folding_restores_canonical_order(self):
        records = self.records()
        forward = StreamSummary()
        shuffled = StreamSummary()
        for order, record in enumerate(records):
            forward.add(record, order=order)
        indexed = list(enumerate(records))
        random.Random(3).shuffle(indexed)
        for order, record in indexed:
            shuffled.add(record, order=order)
        assert forward.summary() == shuffled.summary()
        assert forward.sketch() == shuffled.sketch()

    def test_no_successful_trials(self):
        stream = StreamSummary()
        assert stream.summary() is None
        assert stream.sketch() is None
