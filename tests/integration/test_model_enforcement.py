"""The runtime enforces model boundaries — mismatches fail loudly.

The paper's lower bounds are about what weaker models *cannot* do;
correspondingly, our runtime must make it impossible to accidentally
run a KT1 algorithm under KT0 or a whiteboard algorithm without
whiteboards.  These tests pin that enforcement.
"""

from __future__ import annotations

import random

import pytest

from repro.core.constants import Constants
from repro.core.whiteboard_algorithm import theorem1_programs
from repro.baselines.trivial import trivial_programs
from repro.errors import ProtocolError, WhiteboardDisabledError
from repro.graphs.generators import (
    complete_graph,
    dilate_id_space,
    random_graph_with_min_degree,
)
from repro.graphs.ports import PortModel
from repro.runtime.scheduler import SyncScheduler


@pytest.fixture(scope="module")
def graph():
    return random_graph_with_min_degree(120, 30, random.Random("enforce"))


class TestKt0Enforcement:
    def test_theorem1_cannot_run_under_kt0(self, graph):
        """Theorem 4's model: the KT1 algorithm fails at its first
        neighborhood read, it does not silently degrade."""
        prog_a, prog_b = theorem1_programs(graph.min_degree, Constants.testing())
        scheduler = SyncScheduler(
            graph, prog_a, prog_b, graph.vertices[0],
            graph.neighbors(graph.vertices[0])[0],
            port_model=PortModel.KT0, max_rounds=1000,
        )
        with pytest.raises(ProtocolError):
            scheduler.run()

    def test_trivial_probe_cannot_run_under_kt0(self, graph):
        prog_a, prog_b = trivial_programs()
        scheduler = SyncScheduler(
            graph, prog_a, prog_b, graph.vertices[0],
            graph.neighbors(graph.vertices[0])[0],
            port_model=PortModel.KT0, max_rounds=1000,
        )
        with pytest.raises(ProtocolError):
            scheduler.run()


class TestWhiteboardEnforcement:
    def test_theorem1_cannot_run_without_whiteboards(self, graph):
        prog_a, prog_b = theorem1_programs(graph.min_degree, Constants.testing())
        scheduler = SyncScheduler(
            graph, prog_a, prog_b, graph.vertices[0],
            graph.neighbors(graph.vertices[0])[0],
            whiteboards=False, max_rounds=2_000_000,
        )
        with pytest.raises(WhiteboardDisabledError):
            scheduler.run()


class TestIdSpaceRobustness:
    """Algorithms must rely only on n' — scattered IDs change nothing
    about correctness."""

    def test_theorem2_with_dilated_ids(self):
        from repro.core.api import rendezvous

        rng = random.Random("dilate-t2")
        graph = dilate_id_space(
            random_graph_with_min_degree(150, 45, rng), 3, rng
        )
        assert graph.id_space == 3 * 150
        result = rendezvous(graph, "theorem2", seed=0,
                            constants=Constants.testing())
        assert result.met
        assert result.whiteboard_writes == 0

    def test_anderson_weber_with_dilated_ids(self):
        from repro.core.api import rendezvous

        rng = random.Random("dilate-aw")
        graph = dilate_id_space(complete_graph(80), 5, rng)
        result = rendezvous(graph, "anderson-weber", seed=0)
        assert result.met
