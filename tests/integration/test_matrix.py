"""Integration matrix: algorithms × graph families × seeds.

Systematic coverage that every registered algorithm completes
rendezvous on every compatible graph family.  Instances are kept small
so the matrix stays fast; the benchmark suite covers the large sizes.
"""

from __future__ import annotations

import random

import pytest

from repro.core.api import rendezvous
from repro.core.constants import Constants
from repro.graphs.families import (
    complete_bipartite_graph,
    hypercube_graph,
    margulis_expander,
    stochastic_block_graph,
    torus_grid_graph,
)
from repro.graphs.generators import (
    barbell_graph,
    complete_graph,
    cycle_graph,
    powerlaw_graph_with_floor,
    random_geometric_dense_graph,
    random_graph_with_min_degree,
    random_regular_graph,
)

CONSTANTS = Constants.testing()


def _families():
    rng = random.Random("matrix")
    return [
        ("complete", complete_graph(60)),
        ("er-dense", random_graph_with_min_degree(150, 40, rng)),
        ("geometric", random_geometric_dense_graph(150, 40, rng)),
        ("regular", random_regular_graph(120, 30, rng)),
        ("powerlaw", powerlaw_graph_with_floor(150, 15, rng)),
        ("bipartite", complete_bipartite_graph(40, 50)),
        ("sbm", stochastic_block_graph(60, rng, p_in=0.5, p_out=0.05, min_degree=15)),
    ]


FAMILIES = _families()
DENSE_FAMILY_IDS = [name for name, _ in FAMILIES]


@pytest.mark.parametrize("name,graph", FAMILIES, ids=DENSE_FAMILY_IDS)
@pytest.mark.parametrize("seed", [0, 1])
class TestTheorem1Matrix:
    def test_theorem1(self, name, graph, seed):
        result = rendezvous(graph, "theorem1", seed=seed, constants=CONSTANTS)
        assert result.met, f"theorem1 failed on {name} seed {seed}"

    def test_theorem1_with_estimation(self, name, graph, seed):
        result = rendezvous(
            graph, "theorem1", seed=seed, delta="estimate", constants=CONSTANTS
        )
        assert result.met, f"estimation failed on {name} seed {seed}"


@pytest.mark.parametrize("name,graph", FAMILIES, ids=DENSE_FAMILY_IDS)
class TestBaselineMatrix:
    def test_trivial(self, name, graph):
        result = rendezvous(graph, "trivial", seed=0)
        assert result.met
        assert result.rounds <= 2 * graph.max_degree + 2

    def test_explore(self, name, graph):
        result = rendezvous(graph, "explore", seed=0)
        assert result.met
        assert result.rounds <= 2 * graph.n


class TestSparseFamilies:
    """Families below the paper's δ ≥ √n premise: the algorithm still
    terminates and meets (the bound just isn't sublinear)."""

    @pytest.mark.parametrize(
        "graph",
        [
            hypercube_graph(6),
            torus_grid_graph(6, 6),
            margulis_expander(6),
            cycle_graph(40),
            barbell_graph(20),
        ],
        ids=["hypercube", "torus", "expander", "cycle", "barbell"],
    )
    def test_theorem1_on_sparse_graphs(self, graph):
        result = rendezvous(
            graph, "theorem1", seed=0, constants=CONSTANTS,
            max_rounds=8_000_000,
        )
        assert result.met, f"theorem1 failed on {graph.name}"


class TestWhiteboardFreeMatrix:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_theorem2_on_dense_er(self, seed):
        graph = dict(FAMILIES)["er-dense"]
        result = rendezvous(graph, "theorem2", seed=seed, constants=CONSTANTS)
        assert result.met
        assert result.whiteboard_writes == 0

    def test_theorem2_on_geometric(self):
        graph = dict(FAMILIES)["geometric"]
        result = rendezvous(graph, "theorem2", seed=0, constants=CONSTANTS)
        assert result.met
