"""Failure injection: corrupted whiteboards and hostile environments.

The paper assumes a benign environment; production code shouldn't
crash when that assumption breaks.  These tests scribble garbage on
whiteboards mid-execution and assert the algorithms either still meet
(the marks keep being rewritten) or fail *gracefully* — never with an
unhandled exception.
"""

from __future__ import annotations

import random

import pytest

from repro.core.constants import Constants
from repro.core.main_rendezvous import MainRendezvousA, MarkerB
from repro.core.whiteboard_algorithm import theorem1_programs
from repro.experiments.workloads import two_hop_oracle
from repro.extensions.multihop import multihop_programs
from repro.graphs.generators import random_graph_with_min_degree
from repro.runtime.scheduler import SyncScheduler
from repro.runtime.whiteboard import WhiteboardStore


class CorruptingWhiteboards(WhiteboardStore):
    """A store that randomly corrupts a fraction of reads."""

    def __init__(self, rng: random.Random, corruption_rate: float,
                 garbage=("junk", 10**9, ("trail", "not-a-path"), -1)):
        super().__init__()
        self._rng = rng
        self._rate = corruption_rate
        self._garbage = garbage

    def read(self, vertex):
        value = super().read(vertex)
        if self._rng.random() < self._rate:
            return self._garbage[self._rng.randrange(len(self._garbage))]
        return value


@pytest.fixture(scope="module")
def graph():
    return random_graph_with_min_degree(180, 45, random.Random("inject"))


def run_with_corruption(graph, prog_a, prog_b, start_a, start_b, seed, rate):
    scheduler = SyncScheduler(
        graph, prog_a, prog_b, start_a, start_b, seed=seed,
        max_rounds=2_000_000,
    )
    scheduler.whiteboards = CorruptingWhiteboards(
        random.Random(f"corrupt:{seed}"), rate
    )
    return scheduler.run()


def adjacent_pair(graph, seed=0):
    edges = list(graph.edges())
    return edges[random.Random(seed).randrange(len(edges))]


class TestMainRendezvousUnderCorruption:
    @pytest.mark.parametrize("rate", [0.05, 0.3])
    def test_never_crashes_and_usually_meets(self, graph, rate):
        constants = Constants.testing()
        start_a, start_b = adjacent_pair(graph)
        met = 0
        for seed in range(4):
            target_set, via = two_hop_oracle(graph, start_a)
            result = run_with_corruption(
                graph,
                MainRendezvousA(target_set, routes_via=via),
                MarkerB(),
                start_a, start_b, seed, rate,
            )
            met += result.met
        # Corrupted marks are either unreachable IDs (skipped by the
        # defensive check) or reachable wrong vertices (agent a walks
        # there, finds nothing, b keeps marking): meetings still happen.
        assert met >= 2

    def test_corrupted_mark_to_reachable_wrong_vertex(self, graph):
        """A plausible-but-wrong mark must not deadlock the system."""
        constants = Constants.testing()
        start_a, start_b = adjacent_pair(graph, seed=3)
        # Garbage values drawn from real neighbor IDs of the start:
        neighbors = graph.neighbors(start_a)
        target_set, via = two_hop_oracle(graph, start_a)
        scheduler = SyncScheduler(
            graph,
            MainRendezvousA(target_set, routes_via=via),
            MarkerB(),
            start_a, start_b, seed=5, max_rounds=2_000_000,
        )
        scheduler.whiteboards = CorruptingWhiteboards(
            random.Random(9), 0.2, garbage=tuple(neighbors[:4])
        )
        result = scheduler.run()
        # Agent a may halt at a wrong vertex; agent b's walk can still
        # stumble onto it, or the budget expires — but no exception.
        assert result.met or result.failure_reason is not None


class TestTheorem1UnderCorruption:
    def test_full_algorithm_survives_noise(self, graph):
        start_a, start_b = adjacent_pair(graph, seed=1)
        met = 0
        for seed in range(3):
            prog_a, prog_b = theorem1_programs(
                graph.min_degree, Constants.testing()
            )
            result = run_with_corruption(
                graph, prog_a, prog_b, start_a, start_b, seed, rate=0.1
            )
            met += result.met
        assert met >= 2


class TestMultihopUnderCorruption:
    def test_garbage_trails_are_rejected(self, graph):
        """Corrupted trail tuples must fail the walkability check, not
        crash the searcher."""
        start_a, start_b = adjacent_pair(graph, seed=2)
        prog_a, prog_b = multihop_programs(
            graph.min_degree, Constants.testing()
        )
        result = run_with_corruption(
            graph, prog_a, prog_b, start_a, start_b, seed=0, rate=0.15
        )
        assert result.met or result.failure_reason is not None
