"""Failure injection: corrupted whiteboards and hostile environments.

The paper assumes a benign environment; production code shouldn't
crash when that assumption breaks.  These tests corrupt whiteboard
reads mid-execution and assert the algorithms either still meet (the
marks keep being rewritten) or fail *gracefully* — a failed result or
a clean :class:`ProtocolError` — never with an unhandled exception.

This file originally defined its own ``CorruptingWhiteboards`` store
and patched it onto a scheduler after construction.  That assignment
was dead: the engine had already bound the pristine store's methods,
so nothing was ever injected.  The store now lives in
:mod:`repro.scenarios` and the engine installs it *itself* when a
:class:`ScenarioSpec` with whiteboard fault rates is active — these
tests go through that public path, so the corruption is real (and the
pass thresholds were recalibrated accordingly).
"""

from __future__ import annotations

import random

import pytest

from repro.core.constants import Constants
from repro.core.main_rendezvous import MainRendezvousA, MarkerB
from repro.core.whiteboard_algorithm import theorem1_programs
from repro.errors import ProtocolError
from repro.experiments.workloads import two_hop_oracle
from repro.extensions.multihop import multihop_programs
from repro.graphs.generators import random_graph_with_min_degree
from repro.runtime.scheduler import SyncScheduler
from repro.scenarios import CorruptingWhiteboards, FaultyWhiteboardStore, ScenarioSpec


@pytest.fixture
def graph():
    # Function-scoped: a fresh instance per test keeps corruption
    # experiments from coupling through shared fixture state.
    return random_graph_with_min_degree(180, 45, random.Random("inject"))


def corruption_spec(rate: float, garbage: tuple | None = None) -> ScenarioSpec:
    kwargs = {"garbage": garbage} if garbage is not None else {}
    return ScenarioSpec(name="inject-corrupt", corruption_rate=rate, **kwargs)


def run_with_scenario(graph, prog_a, prog_b, start_a, start_b, seed, spec):
    scheduler = SyncScheduler(
        graph, prog_a, prog_b, start_a, start_b, seed=seed,
        max_rounds=500_000, scenario=spec,
    )
    return scheduler.run()


def adjacent_pair(graph, seed=0):
    edges = list(graph.edges())
    return edges[random.Random(seed).randrange(len(edges))]


class TestMainRendezvousUnderCorruption:
    @pytest.mark.parametrize("rate", [0.05, 0.3])
    def test_never_crashes_and_usually_meets(self, graph, rate):
        start_a, start_b = adjacent_pair(graph)
        met = 0
        for seed in range(4):
            target_set, via = two_hop_oracle(graph, start_a)
            try:
                result = run_with_scenario(
                    graph,
                    MainRendezvousA(target_set, routes_via=via),
                    MarkerB(),
                    start_a, start_b, seed, corruption_spec(rate),
                )
            except ProtocolError:
                continue  # graceful: the guard named the failing agent
            met += result.met
        # Corrupted marks are either unreachable IDs (skipped by the
        # defensive check) or reachable wrong vertices (agent a walks
        # there, finds nothing, b keeps marking): meetings still happen.
        assert met >= 2

    def test_corrupted_mark_to_reachable_wrong_vertex(self, graph):
        """A plausible-but-wrong mark must not deadlock the system."""
        start_a, start_b = adjacent_pair(graph, seed=3)
        # Garbage values drawn from real neighbor IDs of the start:
        neighbors = graph.neighbors(start_a)
        target_set, via = two_hop_oracle(graph, start_a)
        spec = corruption_spec(0.2, garbage=tuple(neighbors[:4]))
        try:
            result = run_with_scenario(
                graph,
                MainRendezvousA(target_set, routes_via=via),
                MarkerB(),
                start_a, start_b, 5, spec,
            )
        except ProtocolError:
            return
        # Agent a may halt at a wrong vertex; agent b's walk can still
        # stumble onto it, or the budget expires — but no exception.
        assert result.met or result.failure_reason is not None

    def test_corruption_actually_fires(self, graph):
        """The engine-installed store really injects (the old patched
        store silently never did)."""
        start_a, start_b = adjacent_pair(graph)
        target_set, via = two_hop_oracle(graph, start_a)
        scheduler = SyncScheduler(
            graph,
            MainRendezvousA(target_set, routes_via=via),
            MarkerB(),
            start_a, start_b, seed=0,
            max_rounds=500_000, scenario=corruption_spec(1.0),
        )
        engine = scheduler.engine
        assert isinstance(engine.whiteboards, FaultyWhiteboardStore)
        try:
            scheduler.run()
        except ProtocolError:
            pass
        assert engine.whiteboards.reads > 0
        corruptions = [e for e in engine.scenario_events if e[0] == "wb-corrupt"]
        assert len(corruptions) == engine.whiteboards.reads


class TestTheorem1UnderCorruption:
    def test_full_algorithm_survives_noise(self, graph):
        start_a, start_b = adjacent_pair(graph, seed=1)
        met = 0
        for seed in range(3):
            prog_a, prog_b = theorem1_programs(
                graph.min_degree, Constants.testing()
            )
            try:
                result = run_with_scenario(
                    graph, prog_a, prog_b, start_a, start_b, seed,
                    corruption_spec(0.1),
                )
            except ProtocolError:
                continue
            met += result.met
        assert met >= 2


class TestMultihopUnderCorruption:
    def test_garbage_trails_are_rejected(self, graph):
        """Corrupted trail tuples must fail the walkability check, not
        crash the searcher."""
        start_a, start_b = adjacent_pair(graph, seed=2)
        prog_a, prog_b = multihop_programs(
            graph.min_degree, Constants.testing()
        )
        try:
            result = run_with_scenario(
                graph, prog_a, prog_b, start_a, start_b, 0,
                corruption_spec(0.15),
            )
        except ProtocolError:
            return
        assert result.met or result.failure_reason is not None


class TestHistoricalStoreAlias:
    def test_corrupting_whiteboards_keeps_its_signature(self):
        """The promoted store answers to its historical constructor."""
        store = CorruptingWhiteboards(random.Random(7), 1.0)
        store.write("v", "real")
        assert store.read("v") != "real"
        assert isinstance(store, FaultyWhiteboardStore)
        intact = CorruptingWhiteboards(random.Random(7), 0.0)
        intact.write("v", "real")
        assert intact.read("v") == "real"
