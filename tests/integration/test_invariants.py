"""Deep invariants, driven by hypothesis across seeds and sizes.

These assert structural facts that must hold for *every* execution —
the machine-checkable core of the paper's arguments:

* routes learned by ``Construct`` are real paths in the graph;
* whiteboard contents during Theorem 1 runs are only ever ``v₀ᵇ``;
* the whiteboard-free execution truly never touches whiteboards;
* meeting rounds respect the trivial distance/2 lower bound;
* the scheduler never teleports (trace consecutive positions are
  adjacent or equal).
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.api import rendezvous
from repro.core.constants import Constants
from repro.core.construct import ConstructOnlyProgram
from repro.graphs.generators import random_graph_with_min_degree
from repro.runtime.single import run_single_agent

CONSTANTS = Constants.testing()


def make_graph(seed, n=100, delta=24):
    return random_graph_with_min_degree(n, delta, random.Random(f"inv:{seed}"))


class TestConstructRouteValidity:
    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 100))
    def test_routes_are_graph_paths(self, seed):
        graph = make_graph(seed)
        start = graph.vertices[0]
        program = ConstructOnlyProgram(graph.min_degree, CONSTANTS)
        run_single_agent(program, graph, start, rounds=10**9, seed=seed,
                         id_space=graph.id_space)
        outcome = program.outcome
        assert outcome.completed
        for vertex in outcome.target_set:
            here = start
            for hop in outcome.local_map.route(vertex):
                assert graph.has_edge(here, hop), (
                    f"route to {vertex} uses non-edge ({here}, {hop})"
                )
                here = hop
            assert here == vertex


class TestWhiteboardDiscipline:
    def test_theorem1_writes_only_partner_home(self):
        from repro.core.whiteboard_algorithm import theorem1_programs
        from repro.runtime.scheduler import SyncScheduler

        graph = make_graph(1)
        start_a = graph.vertices[0]
        start_b = graph.neighbors(start_a)[0]
        prog_a, prog_b = theorem1_programs(graph.min_degree, CONSTANTS)
        scheduler = SyncScheduler(
            graph, prog_a, prog_b, start_a, start_b, seed=0,
            max_rounds=2_000_000,
        )
        result = scheduler.run()
        assert result.met
        for vertex in scheduler.whiteboards.written_vertices():
            assert scheduler.whiteboards.peek(vertex) == start_b

    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(0, 50))
    def test_theorem2_never_touches_whiteboards(self, seed):
        graph = make_graph(seed, n=120, delta=30)
        result = rendezvous(graph, "theorem2", seed=seed, constants=CONSTANTS)
        assert result.met
        assert result.whiteboard_reads == 0
        assert result.whiteboard_writes == 0


class TestSchedulerPhysics:
    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 100))
    def test_no_teleportation(self, seed):
        graph = make_graph(seed, n=60, delta=12)
        result = rendezvous(
            graph, "random-walk", seed=seed, max_rounds=5_000,
            record_trace=True,
        )
        trace = result.trace
        for (_, a0, b0), (_, a1, b1) in zip(trace, trace[1:]):
            assert a0 == a1 or graph.has_edge(a0, a1)
            assert b0 == b1 or graph.has_edge(b0, b1)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 100))
    def test_meeting_respects_distance_lower_bound(self, seed):
        """Half the initial distance is the trivial lower bound (§1.1)."""
        graph = make_graph(seed, n=80, delta=16)
        from repro.core.api import pick_adjacent_starts

        start_a, start_b = pick_adjacent_starts(graph, random.Random(seed))
        result = rendezvous(
            graph, "random-walk", seed=seed, start_a=start_a, start_b=start_b,
            max_rounds=200_000,
        )
        if result.met:
            distance = graph.distance(start_a, start_b)
            assert result.rounds >= (distance + 1) // 2

    def test_moves_bounded_by_rounds(self):
        graph = make_graph(5)
        result = rendezvous(graph, "theorem1", seed=2, constants=CONSTANTS)
        assert result.met
        assert result.moves["a"] <= result.rounds
        assert result.moves["b"] <= result.rounds
