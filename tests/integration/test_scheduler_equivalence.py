"""Cross-validation: the k-agent scheduler generalizes the 2-agent one.

With the same programs, starts, and seed, ``MultiAgentScheduler`` in
pairwise-termination mode must reproduce ``SyncScheduler``'s outcome
exactly (same meeting round, vertex, and move counts).  Agent names
``a``/``b`` are passed explicitly so the private random tapes match.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.random_walk import RandomWalker
from repro.baselines.trivial import TrivialProbeA, WaitingB
from repro.core.main_rendezvous import MainRendezvousA, MarkerB
from repro.experiments.workloads import two_hop_oracle
from repro.graphs.generators import complete_graph, random_graph_with_min_degree
from repro.runtime.multi import MultiAgentScheduler
from repro.runtime.scheduler import SyncScheduler


def both_schedulers(graph, make_programs, start_a, start_b, seed, max_rounds):
    prog_a, prog_b = make_programs()
    two = SyncScheduler(
        graph, prog_a, prog_b, start_a, start_b, seed=seed,
        max_rounds=max_rounds,
    ).run()
    prog_a, prog_b = make_programs()
    multi = MultiAgentScheduler(
        graph, [prog_a, prog_b], [start_a, start_b], names=["a", "b"],
        seed=seed, termination="pair", max_rounds=max_rounds,
    ).run()
    return two, multi


class TestEquivalence:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 200))
    def test_random_walks_identical(self, seed):
        graph = complete_graph(24)
        two, multi = both_schedulers(
            graph, lambda: (RandomWalker(), RandomWalker()), 0, 1, seed, 50_000
        )
        assert two.met == multi.completed
        assert two.rounds == multi.rounds
        assert two.meeting_vertex == multi.meeting_vertex
        assert two.moves["a"] == multi.moves["a"]
        assert two.moves["b"] == multi.moves["b"]

    def test_trivial_identical(self):
        graph = random_graph_with_min_degree(80, 20, random.Random(0))
        start_a = graph.vertices[0]
        start_b = graph.neighbors(start_a)[0]
        two, multi = both_schedulers(
            graph, lambda: (TrivialProbeA(), WaitingB()),
            start_a, start_b, 3, 10_000,
        )
        assert two.rounds == multi.rounds
        assert two.meeting_vertex == multi.meeting_vertex

    def test_main_rendezvous_identical(self):
        graph = random_graph_with_min_degree(100, 25, random.Random(1))
        start_a = graph.vertices[0]
        start_b = graph.neighbors(start_a)[0]
        target_set, via = two_hop_oracle(graph, start_a)

        def make():
            return MainRendezvousA(target_set, routes_via=via), MarkerB()

        two, multi = both_schedulers(graph, make, start_a, start_b, 7, 500_000)
        assert two.met and multi.completed
        assert two.rounds == multi.rounds
        assert two.meeting_vertex == multi.meeting_vertex
        assert two.whiteboard_writes == multi.whiteboard_writes
