"""Cross-validation of every execution path against its siblings.

Two families of checks:

* the k-agent scheduler generalizes the 2-agent one — with the same
  programs, starts, and seed, ``MultiAgentScheduler`` in pairwise-
  termination mode must reproduce ``SyncScheduler``'s outcome exactly
  (same meeting round, vertex, and move counts); agent names ``a``/``b``
  are passed explicitly so the private random tapes match;
* the engine-backed façades reproduce the frozen seed schedulers
  (:mod:`repro.runtime.reference`) **byte-identically** — full
  ``ExecutionResult`` equality including position traces — for every
  registered algorithm and under both port models;
* the batched trial executor (:func:`repro.experiments.harness.run_trials`
  — one compiled :class:`~repro.runtime.plan.ExecutionPlan`, one reused
  engine) records exactly the per-seed
  :func:`~repro.experiments.harness.run_trial` records for every
  registered algorithm.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.random_walk import RandomWalker
from repro.baselines.trivial import TrivialProbeA, WaitingB
from repro.core.api import ALGORITHMS
from repro.core.constants import Constants
from repro.core.main_rendezvous import MainRendezvousA, MarkerB
from repro.experiments.workloads import two_hop_oracle
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    random_graph_with_min_degree,
)
from repro.graphs.ports import PortLabeling, PortModel
from repro.runtime.multi import MultiAgentScheduler
from repro.runtime.reference import (
    ReferenceMultiAgentScheduler,
    ReferenceSyncScheduler,
    reference_run_single_agent,
)
from repro.runtime.scheduler import SyncScheduler
from repro.runtime.single import run_single_agent


def both_schedulers(graph, make_programs, start_a, start_b, seed, max_rounds):
    prog_a, prog_b = make_programs()
    two = SyncScheduler(
        graph, prog_a, prog_b, start_a, start_b, seed=seed,
        max_rounds=max_rounds,
    ).run()
    prog_a, prog_b = make_programs()
    multi = MultiAgentScheduler(
        graph, [prog_a, prog_b], [start_a, start_b], names=["a", "b"],
        seed=seed, termination="pair", max_rounds=max_rounds,
    ).run()
    return two, multi


class TestEquivalence:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 200))
    def test_random_walks_identical(self, seed):
        graph = complete_graph(24)
        two, multi = both_schedulers(
            graph, lambda: (RandomWalker(), RandomWalker()), 0, 1, seed, 50_000
        )
        assert two.met == multi.completed
        assert two.rounds == multi.rounds
        assert two.meeting_vertex == multi.meeting_vertex
        assert two.moves["a"] == multi.moves["a"]
        assert two.moves["b"] == multi.moves["b"]

    def test_trivial_identical(self):
        graph = random_graph_with_min_degree(80, 20, random.Random(0))
        start_a = graph.vertices[0]
        start_b = graph.neighbors(start_a)[0]
        two, multi = both_schedulers(
            graph, lambda: (TrivialProbeA(), WaitingB()),
            start_a, start_b, 3, 10_000,
        )
        assert two.rounds == multi.rounds
        assert two.meeting_vertex == multi.meeting_vertex

    def test_main_rendezvous_identical(self):
        graph = random_graph_with_min_degree(100, 25, random.Random(1))
        start_a = graph.vertices[0]
        start_b = graph.neighbors(start_a)[0]
        target_set, via = two_hop_oracle(graph, start_a)

        def make():
            return MainRendezvousA(target_set, routes_via=via), MarkerB()

        two, multi = both_schedulers(graph, make, start_a, start_b, 7, 500_000)
        assert two.met and multi.completed
        assert two.rounds == multi.rounds
        assert two.meeting_vertex == multi.meeting_vertex
        assert two.whiteboard_writes == multi.whiteboard_writes


def _seed_vs_engine(graph, make_programs, start_a, start_b, seed, *,
                    whiteboards=True, max_rounds=500_000, port_model=PortModel.KT1,
                    make_labeling=None):
    """Run one execution through both paths; full traces recorded."""
    kwargs = dict(
        seed=seed,
        whiteboards=whiteboards,
        max_rounds=max_rounds,
        port_model=port_model,
        record_trace=True,
    )
    prog_a, prog_b = make_programs()
    old = ReferenceSyncScheduler(
        graph, prog_a, prog_b, start_a, start_b,
        labeling=make_labeling(graph) if make_labeling else None, **kwargs,
    ).run()
    prog_a, prog_b = make_programs()
    new = SyncScheduler(
        graph, prog_a, prog_b, start_a, start_b,
        labeling=make_labeling(graph) if make_labeling else None, **kwargs,
    ).run()
    return old, new


class TestEngineMatchesSeedSchedulers:
    """The engine-backed façades are byte-identical to the seed loops."""

    @pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
    def test_all_registered_algorithms_identical(self, algorithm):
        """Every registry entry: identical results, traces included."""
        spec = ALGORITHMS[algorithm]
        graph = random_graph_with_min_degree(150, 40, random.Random("eq-engine"))
        start_a = graph.vertices[0]
        start_b = graph.neighbors(start_a)[0]
        constants = Constants.testing()
        delta = graph.min_degree if spec.uses_delta else None

        for seed in (0, 11):
            old, new = _seed_vs_engine(
                graph,
                lambda: spec.factory(delta, constants),
                start_a, start_b, seed,
                whiteboards=spec.uses_whiteboards,
                max_rounds=spec.budget(graph, constants),
            )
            assert old == new, f"{algorithm} diverged at seed {seed}"
            assert old.trace == new.trace

    @pytest.mark.parametrize("port_model", [PortModel.KT1, PortModel.KT0])
    def test_port_models_identical(self, port_model):
        """Port-agnostic walkers under both models, shuffled KT0 ports."""
        graph = cycle_graph(64)

        def shuffled(g):
            return PortLabeling(g, rng=random.Random("eq-ports"))

        for seed in range(5):
            old, new = _seed_vs_engine(
                graph,
                lambda: (RandomWalker(), RandomWalker()),
                0, 5, seed,
                whiteboards=False,
                max_rounds=50_000,
                port_model=port_model,
                make_labeling=shuffled,
            )
            assert old == new, f"port model {port_model} diverged at seed {seed}"

    def test_multi_agent_identical(self):
        """k-agent engine loop vs the seed k-agent loop, both modes."""
        graph = complete_graph(24)
        for termination in ("all", "pair"):
            for seed in range(4):
                old = ReferenceMultiAgentScheduler(
                    graph,
                    [RandomWalker(), RandomWalker(), RandomWalker()],
                    [0, 1, 2],
                    seed=seed, termination=termination, max_rounds=100_000,
                ).run()
                new = MultiAgentScheduler(
                    graph,
                    [RandomWalker(), RandomWalker(), RandomWalker()],
                    [0, 1, 2],
                    seed=seed, termination=termination, max_rounds=100_000,
                ).run()
                assert old == new, (
                    f"multi-agent {termination!r} diverged at seed {seed}"
                )

    def test_single_agent_identical(self):
        """Solo engine loop vs the seed solo loop over a static source."""
        graph = random_graph_with_min_degree(80, 10, random.Random("eq-solo"))
        for seed in range(4):
            old = reference_run_single_agent(
                RandomWalker(), graph, graph.vertices[0], 5_000, seed=seed
            )
            new = run_single_agent(
                RandomWalker(), graph, graph.vertices[0], 5_000, seed=seed
            )
            assert old == new, f"solo run diverged at seed {seed}"


class TestBatchedTrialsMatchSerial:
    """run_trials (shared plan, reused engine) == per-seed run_trial."""

    @pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
    def test_all_registered_algorithms_identical(self, algorithm):
        from repro.experiments.harness import run_trial, run_trials

        graph = random_graph_with_min_degree(120, 35, random.Random("eq-batch"))
        constants = Constants.testing()
        seeds = [0, 7, 19]
        serial = [
            run_trial(graph, algorithm, seed, constants=constants)
            for seed in seeds
        ]
        batched = run_trials(graph, algorithm, seeds, constants=constants)
        assert batched == serial, f"{algorithm} batched records diverged"

    def test_kt0_and_explicit_plan_identical(self):
        from repro.experiments.harness import run_trial, run_trials
        from repro.runtime.plan import ExecutionPlan

        graph = cycle_graph(48)
        plan = ExecutionPlan.compile(graph, port_model=PortModel.KT0)
        seeds = list(range(6))
        serial = [
            run_trial(graph, "random-walk", seed,
                      port_model=PortModel.KT0, max_rounds=5_000)
            for seed in seeds
        ]
        batched = run_trials(
            graph, "random-walk", seeds,
            plan=plan, port_model=PortModel.KT0, max_rounds=5_000,
        )
        assert batched == serial

    def test_explicit_starts_and_delta_identical(self):
        from repro.experiments.harness import run_trial, run_trials

        graph = random_graph_with_min_degree(90, 25, random.Random("eq-starts"))
        start_a = graph.vertices[0]
        start_b = graph.neighbors(start_a)[0]
        constants = Constants.testing()
        kwargs = dict(
            constants=constants, delta=20, start_a=start_a, start_b=start_b
        )
        seeds = [1, 2]
        serial = [
            run_trial(graph, "theorem1", seed, **kwargs) for seed in seeds
        ]
        batched = run_trials(graph, "theorem1", seeds, **kwargs)
        assert batched == serial

    @pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
    def test_single_seed_batch_identical(self, algorithm):
        """A batch of one equals the per-seed path (lockstep or serial)."""
        from repro.experiments.harness import run_trial, run_trials

        graph = random_graph_with_min_degree(64, 16, random.Random("eq-one"))
        constants = Constants.testing()
        assert run_trials(graph, algorithm, [9], constants=constants) == [
            run_trial(graph, algorithm, 9, constants=constants)
        ]

    def test_duplicate_seed_batch_identical(self):
        """Repeated seeds each re-run the identical trial."""
        from repro.experiments.harness import run_trial, run_trials

        graph = random_graph_with_min_degree(64, 16, random.Random("eq-dup"))
        for algorithm in ("random-walk", "trivial", "explore"):
            batched = run_trials(
                graph, algorithm, [3, 3, 3], max_rounds=2_000
            )
            single = run_trial(graph, algorithm, 3, max_rounds=2_000)
            assert batched == [single, single, single], algorithm

    def test_mixed_vectorizable_and_fallback_sweep(self):
        """One sweep mixing a lockstep-eligible and a fallback algorithm."""
        from repro.experiments.harness import run_trial
        from repro.experiments.parallel import (
            CONSTANTS_PRESETS,
            GRAPH_FAMILIES,
            SweepSpec,
            resolve_delta,
            run_sweep,
        )

        spec = SweepSpec(
            name="mixed",
            families=("er-min-degree",),
            ns=(40,),
            deltas=("8",),
            algorithms=("random-walk", "theorem1"),
            seeds=tuple(range(3)),
            max_rounds=50_000,
        )
        swept = run_sweep(spec, workers=1)
        fresh = []
        for point in spec.points():
            delta = resolve_delta(point.delta_spec, point.n)
            rng = random.Random(
                f"sweep-graph:{point.family}:{point.n}:{point.delta_spec}"
            )
            graph = GRAPH_FAMILIES[point.family](point.n, delta, rng)
            fresh.append(run_trial(
                graph, point.algorithm, point.seed,
                constants=CONSTANTS_PRESETS[spec.preset](),
                max_rounds=spec.max_rounds,
            ))
        assert list(swept.records) == fresh
