"""Shared fixtures for the test-suite.

Graph fixtures are module-scoped where construction is expensive; all
randomness flows through explicit seeds so the suite is deterministic.
"""

from __future__ import annotations

import random

import pytest

from repro.core.constants import Constants
from repro.graphs.generators import (
    complete_graph,
    random_graph_with_min_degree,
)


@pytest.fixture(scope="session")
def dense_graph_small():
    """A 200-vertex graph with min degree ~50 (fast integration runs)."""
    return random_graph_with_min_degree(200, 50, random.Random("fixture:dense-small"))


@pytest.fixture(scope="session")
def dense_graph_medium():
    """A 500-vertex graph with min degree ~105."""
    return random_graph_with_min_degree(500, 105, random.Random("fixture:dense-medium"))


@pytest.fixture(scope="session")
def complete_graph_small():
    """K_64."""
    return complete_graph(64)


@pytest.fixture(scope="session")
def testing_constants():
    """The constants preset used by statistical tests."""
    return Constants.testing()


@pytest.fixture(scope="session")
def tuned_constants():
    """The default benchmark preset."""
    return Constants.tuned()
