"""Tests for the Theorem 6 glued instance."""

from __future__ import annotations

import random

import pytest

from repro.baselines.explore import DfsExplorerA
from repro.core.api import rendezvous
from repro.errors import AdversaryError
from repro.lowerbound.glue import build_theorem6_instance
from repro.runtime.scheduler import SyncScheduler


def dfs_factory():
    return DfsExplorerA(randomize=False)


@pytest.fixture(scope="module")
def glued_256():
    return build_theorem6_instance(
        dfs_factory, dfs_factory, n=256, rng=random.Random(0)
    )


class TestInstanceStructure:
    def test_starts_adjacent(self, glued_256):
        g = glued_256.graph
        assert g.has_edge(glued_256.start_a, glued_256.start_b)

    def test_min_degree_theta_n(self, glued_256):
        # Theorem 6 requires delta = Theta(n); our construction gives
        # at least ~n/16.
        assert glued_256.graph.min_degree >= 256 // 16

    def test_max_degree_theta_n(self, glued_256):
        assert glued_256.graph.max_degree >= 256 // 4

    def test_id_space(self, glued_256):
        assert glued_256.graph.id_space == 256
        assert glued_256.graph.n == 256

    def test_budget_is_n_over_32(self, glued_256):
        assert glued_256.budget == 256 // 32

    def test_pair_compatibility(self, glued_256):
        assert glued_256.start_b in glued_256.run_a.surviving_pool
        assert glued_256.start_a in glued_256.run_b.surviving_pool

    def test_connected(self, glued_256):
        assert glued_256.graph.is_connected()


class TestLowerBoundHolds:
    def test_deterministic_pair_cannot_meet(self, glued_256):
        result = SyncScheduler(
            glued_256.graph, dfs_factory(), dfs_factory(),
            glued_256.start_a, glued_256.start_b,
            whiteboards=False, max_rounds=glued_256.budget,
        ).run()
        assert not result.met

    def test_trajectories_replay_solo_runs(self, glued_256):
        """Each agent's glued-run path equals its solo adversarial path."""
        result = SyncScheduler(
            glued_256.graph, dfs_factory(), dfs_factory(),
            glued_256.start_a, glued_256.start_b,
            whiteboards=False, max_rounds=glued_256.budget,
            record_trace=True,
        ).run()
        trace_a = [glued_256.start_a] + [pos_a for _, pos_a, _ in result.trace]
        trace_b = [glued_256.start_b] + [pos_b for _, _, pos_b in result.trace]
        solo_a = list(glued_256.run_a.recorder.positions[: len(trace_a)])
        solo_b = list(glued_256.run_b.recorder.positions[: len(trace_b)])
        assert trace_a == solo_a
        assert trace_b == solo_b

    def test_randomized_algorithm_meets_on_same_instance(self, glued_256):
        result = rendezvous(
            glued_256.graph, "theorem1", seed=1,
            start_a=glued_256.start_a, start_b=glued_256.start_b,
        )
        assert result.met

    @pytest.mark.parametrize("n", [64, 128])
    def test_scales(self, n):
        instance = build_theorem6_instance(
            dfs_factory, dfs_factory, n=n, rng=random.Random(n)
        )
        result = SyncScheduler(
            instance.graph, dfs_factory(), dfs_factory(),
            instance.start_a, instance.start_b,
            whiteboards=False, max_rounds=instance.budget,
        ).run()
        assert not result.met


class TestValidation:
    def test_bad_n_rejected(self):
        with pytest.raises(AdversaryError):
            build_theorem6_instance(dfs_factory, dfs_factory, n=32)
        with pytest.raises(AdversaryError):
            build_theorem6_instance(dfs_factory, dfs_factory, n=65)

    def test_attempt_budget_error(self):
        with pytest.raises(AdversaryError):
            build_theorem6_instance(
                dfs_factory, dfs_factory, n=64,
                rng=random.Random(0), max_attempts=0,
            )
