"""Tests for the Lemma 9 adaptive adversary."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.explore import DfsExplorerA
from repro.errors import AdversaryError
from repro.lowerbound.adversary import AdaptiveAdversary, lemma9_run


class TestInitialGraph:
    def test_star_plus_clique(self):
        adv = AdaptiveAdversary(range(33), start=0)
        # v0 adjacent to everyone.
        assert set(adv.neighbors(0)) == set(range(1, 33))
        # Clique side vertices adjacent to v0 and each other.
        clique = sorted(adv.clique_side)
        for u in clique:
            assert 0 in adv.neighbors(u)
            for v in clique:
                if u != v:
                    assert v in adv.neighbors(u)

    def test_pool_fraction(self):
        adv = AdaptiveAdversary(range(65), start=0)
        assert len(adv.pool) == int(64 * 7 / 8)
        assert len(adv.clique_side) == 64 - len(adv.pool)

    def test_pool_vertices_start_with_degree_one(self):
        adv = AdaptiveAdversary(range(33), start=0)
        for v in adv.pool:
            assert adv.neighbors(v) == (0,)

    def test_force_pool(self):
        adv = AdaptiveAdversary(range(33), start=0, force_pool=[5, 6])
        assert {5, 6} <= adv.pool

    def test_invalid_inputs(self):
        with pytest.raises(AdversaryError):
            AdaptiveAdversary(range(4), start=0)  # too small
        with pytest.raises(AdversaryError):
            AdaptiveAdversary(range(33), start=99)
        with pytest.raises(AdversaryError):
            AdaptiveAdversary(range(33), start=0, force_pool=[0])
        with pytest.raises(AdversaryError):
            AdaptiveAdversary(range(33), start=0, pool_fraction=1.0)


class TestUpdateRule:
    def test_visiting_pool_vertex_gains_clique_edges(self):
        adv = AdaptiveAdversary(range(33), start=0)
        v = sorted(adv.pool)[0]
        adv.on_arrival(0, 0)
        adv.on_arrival(v, 1)
        # v is now adjacent to v0 plus every unvisited clique vertex.
        expected = {0} | (adv.clique_side - {0})
        assert set(adv.neighbors(v)) == expected

    def test_unvisited_pool_stays_degree_one(self):
        adv = AdaptiveAdversary(range(33), start=0)
        visited_pool = sorted(adv.pool)[0]
        adv.on_arrival(0, 0)
        adv.on_arrival(visited_pool, 1)
        for w in adv.pool - {visited_pool}:
            assert adv.neighbors(w) == (0,)

    def test_revisit_is_noop(self):
        adv = AdaptiveAdversary(range(33), start=0)
        v = sorted(adv.pool)[0]
        adv.on_arrival(v, 1)
        additions = adv.edge_additions
        adv.on_arrival(v, 2)
        assert adv.edge_additions == additions

    def test_clique_vertex_visit_adds_nothing(self):
        adv = AdaptiveAdversary(range(33), start=0)
        c = sorted(adv.clique_side)[0]
        adv.on_arrival(c, 1)
        assert adv.edge_additions == 0


class TestLemma9Conditions:
    def _run(self, m, seed=0):
        ids = list(range(m))
        budget = max(1, (m - 1) // 16)
        return lemma9_run(
            DfsExplorerA(randomize=False), ids, start=0, rounds=budget,
            rng=random.Random(seed),
        )

    def test_surviving_pool_large(self):
        """|W| >= 13/14 of the pool (the paper's 13n/32 vs 7n/16)."""
        run = self._run(129)
        pool_size = len(run.adversary.pool)
        assert len(run.surviving_pool) >= pool_size - run.rounds

    def test_condition_i_w_only_adjacent_to_start(self):
        """Lemma 9 (i): surviving pool vertices touch only v0."""
        run = self._run(129)
        graph = run.graph()
        for w in run.surviving_pool:
            assert graph.neighbors(w) == (0,)

    def test_condition_ii_other_degrees_theta_n(self):
        """Lemma 9 (ii): every non-W vertex has degree Θ(n)."""
        run = self._run(129)
        graph = run.graph()
        floor = (129 - 1) // 16  # n/32 in the paper's doubled accounting
        for v in graph.vertices:
            if v in run.surviving_pool:
                continue
            assert graph.degree(v) >= min(floor, len(run.adversary.clique_side) - 1)

    def test_view_consistency_replay(self):
        """Replaying the agent on the final graph follows the same path."""
        from repro.runtime.single import run_single_agent

        run = self._run(161)
        final_graph = run.graph()
        replay = run_single_agent(
            DfsExplorerA(randomize=False), final_graph, 0,
            rounds=run.rounds,
        )
        assert replay.positions == run.recorder.positions

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 100))
    def test_property_conditions_across_seeds(self, seed):
        run = self._run(97, seed)
        graph = run.graph()
        for w in run.surviving_pool:
            assert graph.neighbors(w) == (0,)
