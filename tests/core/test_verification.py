"""Tests for the post-hoc execution verifier."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.api import rendezvous
from repro.core.verification import verify_result
from repro.errors import SchedulerError
from repro.graphs.generators import complete_graph, path_graph


@pytest.fixture
def ok_result():
    g = complete_graph(20)
    result = rendezvous(g, "trivial", seed=0, start_a=0, start_b=1,
                        record_trace=True)
    return g, result


class TestVerifyResult:
    def test_accepts_real_executions(self, ok_result):
        g, result = ok_result
        verify_result(g, result, start_a=0, start_b=1)

    def test_accepts_failed_executions(self):
        g = path_graph(6)
        result = rendezvous(g, "random-walk", seed=0, start_a=0, start_b=1,
                            max_rounds=1)
        if not result.met:
            verify_result(g, result)

    def test_rejects_met_without_vertex(self, ok_result):
        g, result = ok_result
        broken = dataclasses.replace(result, meeting_vertex=None)
        with pytest.raises(SchedulerError):
            verify_result(g, broken)

    def test_rejects_met_with_failure_reason(self, ok_result):
        g, result = ok_result
        broken = dataclasses.replace(result, failure_reason="??")
        with pytest.raises(SchedulerError):
            verify_result(g, broken)

    def test_rejects_failed_with_vertex(self, ok_result):
        g, result = ok_result
        broken = dataclasses.replace(
            result, met=False, failure_reason="x", meeting_vertex=3
        )
        with pytest.raises(SchedulerError):
            verify_result(g, broken)

    def test_rejects_excess_moves(self, ok_result):
        g, result = ok_result
        broken = dataclasses.replace(
            result, moves={"a": result.rounds + 5, "b": 0}
        )
        with pytest.raises(SchedulerError):
            verify_result(g, broken)

    def test_rejects_teleporting_trace(self, ok_result):
        g, result = ok_result
        # path_graph trace with a jump 0 -> 3 (not an edge).
        sparse = path_graph(5)
        broken = dataclasses.replace(
            result, trace=((0, 0, 4), (1, 3, 4)),
        )
        with pytest.raises(SchedulerError):
            verify_result(sparse, broken)

    def test_rejects_sub_distance_meeting(self):
        g = path_graph(9)
        real = rendezvous(g, "random-walk", seed=1, start_a=0, start_b=1,
                          max_rounds=100_000)
        if real.met:
            broken = dataclasses.replace(real, rounds=0)
            with pytest.raises(SchedulerError):
                verify_result(g, broken, start_a=0, start_b=8)
