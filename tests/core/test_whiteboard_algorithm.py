"""Integration tests for the full Theorem 1 algorithm."""

from __future__ import annotations

import random

import pytest

from repro.core.api import rendezvous
from repro.core.constants import Constants
from repro.core.dense import is_dense_set
from repro.graphs.generators import (
    complete_graph,
    dilate_id_space,
    random_geometric_dense_graph,
    random_graph_with_min_degree,
    random_regular_graph,
)


class TestRendezvousAchieved:
    @pytest.mark.parametrize("seed", range(5))
    def test_dense_random_graph(self, dense_graph_small, testing_constants, seed):
        result = rendezvous(
            dense_graph_small, "theorem1", seed=seed, constants=testing_constants
        )
        assert result.met

    def test_medium_graph(self, dense_graph_medium, tuned_constants):
        result = rendezvous(dense_graph_medium, "theorem1", seed=0,
                            constants=tuned_constants)
        assert result.met

    def test_complete_graph(self, complete_graph_small, testing_constants):
        result = rendezvous(
            complete_graph_small, "theorem1", seed=1, constants=testing_constants
        )
        assert result.met

    def test_regular_graph(self, testing_constants):
        g = random_regular_graph(120, 40, random.Random(3))
        result = rendezvous(g, "theorem1", seed=2, constants=testing_constants)
        assert result.met

    def test_geometric_graph(self, testing_constants):
        g = random_geometric_dense_graph(150, 40, random.Random(4))
        result = rendezvous(g, "theorem1", seed=3, constants=testing_constants)
        assert result.met

    def test_dilated_id_space(self, testing_constants):
        """Works when IDs are scattered in a larger space (n' > n)."""
        rng = random.Random(5)
        g = dilate_id_space(random_graph_with_min_degree(120, 30, rng), 8, rng)
        assert g.id_space == 8 * 120
        result = rendezvous(g, "theorem1", seed=4, constants=testing_constants)
        assert result.met

    def test_paper_constants_small_graph(self):
        """The verbatim paper constants also work (slower)."""
        g = random_graph_with_min_degree(80, 25, random.Random(6))
        result = rendezvous(g, "theorem1", seed=5, constants=Constants.paper())
        assert result.met

    def test_rounds_within_budget_envelope(self, dense_graph_medium, tuned_constants):
        from repro.analysis import bounds

        g = dense_graph_medium
        result = rendezvous(g, "theorem1", seed=7, constants=tuned_constants)
        assert result.met
        envelope = 200 * tuned_constants.sample_multiplier * bounds.theorem1_bound(
            g.n, g.min_degree, g.max_degree
        )
        assert result.rounds <= envelope


class TestReports:
    def test_construct_stats_when_construct_completes(self, dense_graph_small,
                                                      testing_constants):
        # Use a seed/start where the meeting happens after Construct;
        # if it meets early the report is empty, so scan a few seeds.
        for seed in range(10):
            result = rendezvous(
                dense_graph_small, "theorem1", seed=seed,
                constants=testing_constants,
            )
            assert result.met
            report = result.reports["a"]
            if "target_set" in report:
                assert report["construct_iterations"] >= 1
                assert report["target_set_size"] == len(report["target_set"])
                assert is_dense_set(
                    dense_graph_small,
                    report["selected"][0],
                    report["target_set"],
                    testing_constants.alpha(report["delta_used"]),
                    2,
                )
                return
        pytest.skip("all seeds met during Construct (early collision)")

    def test_whiteboards_used(self, dense_graph_small, testing_constants):
        result = rendezvous(dense_graph_small, "theorem1", seed=0,
                            constants=testing_constants)
        assert result.whiteboard_writes >= 0  # b may not have written before meeting
