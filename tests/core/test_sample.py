"""Tests for Sample(Γ, α) — Algorithm 2 / Lemma 2."""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.core.constants import Constants
from repro.core.dense import heavy_set, light_set
from repro.core.knowledge import LocalMap
from repro.core.sample import route_back, sample_run
from repro.graphs.generators import random_graph_with_min_degree, star_graph
from repro.runtime.agent import AgentProgram
from repro.runtime.single import run_single_agent


class SampleHarness(AgentProgram):
    """Runs one Sample call over Γ = N⁺(start)."""

    def __init__(self, alpha, constants, degree_floor=None, gamma=None):
        self._alpha = alpha
        self._constants = constants
        self._degree_floor = degree_floor
        self._gamma = gamma
        self.outcome = None
        self.home_closed = None
        self.end_vertex = None

    def run(self, ctx):
        self.home_closed = frozenset(ctx.view.closed_neighbors)
        lm = LocalMap(ctx.start_vertex)
        for u in ctx.view.neighbors:
            lm.add_direct(u)
        gamma = self._gamma if self._gamma is not None else sorted(self.home_closed)
        self.outcome = yield from sample_run(
            ctx, gamma, self._alpha, lm, self.home_closed, self._constants,
            degree_floor=self._degree_floor,
        )
        self.end_vertex = ctx.view.vertex


def run_harness(graph, start, harness, seed=0):
    run_single_agent(harness, graph, start, rounds=10**9, seed=seed,
                     id_space=graph.id_space)
    return harness


class TestRouteBack:
    def test_one_hop(self):
        assert route_back((3,), 0) == [0]

    def test_two_hop(self):
        assert route_back((3, 7), 0) == [3, 0]

    def test_empty(self):
        assert route_back((), 0) == [0]


class TestSampleRun:
    def test_empty_gamma_returns_empty_heavy(self):
        g = star_graph(6, center=0)
        harness = run_harness(
            g, 0, SampleHarness(2.0, Constants.testing(), gamma=[])
        )
        assert harness.outcome.heavy == frozenset()
        assert harness.outcome.visits == 0

    def test_agent_returns_home(self):
        g = random_graph_with_min_degree(60, 12, random.Random(0))
        harness = run_harness(g, g.vertices[0], SampleHarness(2.0, Constants.testing()))
        assert harness.end_vertex == g.vertices[0]

    def test_classification_matches_lemma2(self):
        """Declared-heavy are α-heavy; undeclared are 4α-light (Cor. 1)."""
        constants = Constants.testing()
        rng = random.Random(7)
        g = random_graph_with_min_degree(150, 35, rng)
        start = g.vertices[0]
        alpha = constants.alpha(g.min_degree)
        for seed in range(3):
            harness = run_harness(g, start, SampleHarness(alpha, constants), seed)
            gamma = harness.home_closed
            declared = harness.outcome.heavy
            truly_light = light_set(g, gamma, alpha, universe=gamma)
            heavy4 = heavy_set(g, gamma, 4 * alpha, universe=gamma)
            assert not declared & truly_light, "alpha-light vertex declared heavy"
            assert heavy4 <= declared, "4alpha-heavy vertex declared light"

    def test_degree_floor_trips_guard(self):
        # A star: every leaf has degree 1, so a floor of 2 must trip.
        g = star_graph(30, center=0)
        harness = run_harness(
            g, 0, SampleHarness(1.0, Constants.testing(), degree_floor=2)
        )
        assert harness.outcome.guard_tripped
        assert harness.outcome.heavy is None
        assert harness.end_vertex == 0  # walked home before returning

    def test_observed_min_degree(self):
        g = star_graph(10, center=0)
        harness = run_harness(g, 0, SampleHarness(1.0, Constants.testing()))
        assert harness.outcome.observed_min_degree == 1

    def test_visit_count_matches_constants(self):
        constants = Constants.testing()
        g = random_graph_with_min_degree(50, 10, random.Random(1))
        start = g.vertices[0]
        harness = run_harness(g, start, SampleHarness(5.0, constants))
        expected = constants.sample_count(
            len(harness.home_closed), 5.0, g.id_space
        )
        assert harness.outcome.visits == expected

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 100))
    def test_property_deterministic_given_seed(self, seed):
        g = random_graph_with_min_degree(40, 8, random.Random(5))
        start = g.vertices[0]
        first = run_harness(g, start, SampleHarness(1.0, Constants.testing()), seed)
        second = run_harness(g, start, SampleHarness(1.0, Constants.testing()), seed)
        assert first.outcome.heavy == second.outcome.heavy
