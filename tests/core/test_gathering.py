"""Tests for the k-agent gathering extension."""

from __future__ import annotations

import random

import pytest

from repro.core.gathering import GatheringLeader, gathering_programs
from repro.graphs.generators import complete_graph, random_graph_with_min_degree
from repro.runtime.multi import MultiAgentScheduler


def run_gathering(graph, k, seed=0, constants=None, max_rounds=4_000_000):
    leader_home = graph.vertices[0]
    follower_homes = list(graph.neighbors(leader_home))[: k - 1]
    assert len(follower_homes) == k - 1
    leader, followers = gathering_programs(
        k - 1, delta=graph.min_degree, constants=constants
    )
    scheduler = MultiAgentScheduler(
        graph,
        [leader, *followers],
        [leader_home, *follower_homes],
        names=["leader"] + [f"f{i}" for i in range(k - 1)],
        seed=seed,
        max_rounds=max_rounds,
    )
    return scheduler.run(), leader_home


class TestGathering:
    @pytest.mark.parametrize("k", [2, 3, 5])
    def test_gathers_at_leader_home(self, dense_graph_small, testing_constants, k):
        result, leader_home = run_gathering(
            dense_graph_small, k, seed=k, constants=testing_constants
        )
        assert result.completed
        # Incidental full co-location can end the run early anywhere;
        # when the protocol ran to completion the gathering point is
        # the leader's home.
        if "all_rallied_round" in result.reports["leader"]:
            assert result.meeting_vertex == leader_home

    def test_gathers_on_complete_graph(self, testing_constants):
        g = complete_graph(40)
        result, home = run_gathering(g, 6, seed=1, constants=testing_constants)
        assert result.completed
        if "all_rallied_round" in result.reports["leader"]:
            assert result.meeting_vertex == home

    def test_all_followers_rallied(self, dense_graph_small, testing_constants):
        for seed in range(10):
            result, _ = run_gathering(dense_graph_small, 4, seed=seed,
                                      constants=testing_constants)
            assert result.completed
            if "all_rallied_round" not in result.reports["leader"]:
                continue  # incidental early co-location, try next seed
            discovered = result.reports["leader"]["discovered"]
            assert len(discovered) == 3
            assert len({d["home"] for d in discovered}) == 3
            return
        pytest.skip("all seeds gathered incidentally before the rally phase")

    def test_followers_report_rally_round(self, dense_graph_small, testing_constants):
        for seed in range(10):
            result, _ = run_gathering(dense_graph_small, 3, seed=seed,
                                      constants=testing_constants)
            assert result.completed
            if "all_rallied_round" not in result.reports["leader"]:
                continue
            for name in ("f0", "f1"):
                assert "rally_round" in result.reports[name]
            return
        pytest.skip("all seeds gathered incidentally before the rally phase")

    def test_deterministic_given_seed(self, dense_graph_small, testing_constants):
        r1, _ = run_gathering(dense_graph_small, 3, seed=7,
                              constants=testing_constants)
        r2, _ = run_gathering(dense_graph_small, 3, seed=7,
                              constants=testing_constants)
        assert r1.rounds == r2.rounds

    def test_more_followers_cost_more_probes(self, testing_constants):
        g = random_graph_with_min_degree(200, 50, random.Random(9))
        for seed in range(10):
            result_small, _ = run_gathering(g, 2, seed=seed,
                                            constants=testing_constants)
            result_large, _ = run_gathering(g, 8, seed=seed,
                                            constants=testing_constants)
            assert result_small.completed and result_large.completed
            small_report = result_small.reports["leader"]
            large_report = result_large.reports["leader"]
            if "all_rallied_round" not in large_report:
                continue  # incidental early gathering, try next seed
            assert large_report["probes"] >= small_report.get("probes", 0)
            return
        pytest.skip("all seeds gathered incidentally before the rally phase")

    def test_validation(self):
        with pytest.raises(ValueError):
            GatheringLeader(0)
