"""Tests for Main-Rendezvous (Algorithm 1 / Lemma 1)."""

from __future__ import annotations

import random

import pytest

from repro.core.main_rendezvous import MainRendezvousA, MarkerB
from repro.experiments.workloads import two_hop_oracle
from repro.graphs.generators import complete_graph, random_graph_with_min_degree
from repro.runtime.scheduler import SyncScheduler


def oracle_programs(graph, start_a):
    target_set, via = two_hop_oracle(graph, start_a)
    return MainRendezvousA(target_set, routes_via=via), MarkerB()


def pick_edge(graph, seed=0):
    rng = random.Random(seed)
    edges = list(graph.edges())
    u, v = edges[rng.randrange(len(edges))]
    return u, v


class TestMeeting:
    def test_meets_on_dense_graph(self, dense_graph_small):
        g = dense_graph_small
        start_a, start_b = pick_edge(g, 1)
        prog_a, prog_b = oracle_programs(g, start_a)
        result = SyncScheduler(
            g, prog_a, prog_b, start_a, start_b, seed=1, max_rounds=500_000
        ).run()
        assert result.met

    def test_meets_on_complete_graph(self, complete_graph_small):
        g = complete_graph_small
        prog_a, prog_b = oracle_programs(g, 0)
        result = SyncScheduler(g, prog_a, prog_b, 0, 1, seed=0, max_rounds=100_000).run()
        assert result.met

    def test_meets_across_seeds(self, dense_graph_small):
        g = dense_graph_small
        start_a, start_b = pick_edge(g, 2)
        for seed in range(5):
            prog_a, prog_b = oracle_programs(g, start_a)
            result = SyncScheduler(
                g, prog_a, prog_b, start_a, start_b, seed=seed, max_rounds=500_000
            ).run()
            assert result.met, f"seed {seed} failed"

    def test_mark_found_leads_to_partner_start(self, dense_graph_small):
        """If a finds b's mark it halts at v0_b where b returns."""
        g = dense_graph_small
        start_a, start_b = pick_edge(g, 3)
        prog_a, prog_b = oracle_programs(g, start_a)
        result = SyncScheduler(
            g, prog_a, prog_b, start_a, start_b, seed=3, max_rounds=500_000
        ).run()
        assert result.met
        report = result.reports["a"]
        if "mark_found_round" in report:
            assert result.meeting_vertex == start_b


class TestMarkerB:
    def test_marks_carry_home_id(self, dense_graph_small):
        g = dense_graph_small
        start_a, start_b = pick_edge(g, 4)
        prog_a, prog_b = oracle_programs(g, start_a)
        scheduler = SyncScheduler(
            g, prog_a, prog_b, start_a, start_b, seed=4, max_rounds=500_000
        )
        scheduler.run()
        written = scheduler.whiteboards.written_vertices()
        assert written  # b wrote at least one mark
        for vertex in written:
            assert scheduler.whiteboards.peek(vertex) == start_b
            assert vertex in g.closed_neighbor_set(start_b)

    def test_marks_counted(self, dense_graph_small):
        g = dense_graph_small
        start_a, start_b = pick_edge(g, 5)
        prog_a, prog_b = oracle_programs(g, start_a)
        result = SyncScheduler(
            g, prog_a, prog_b, start_a, start_b, seed=5, max_rounds=500_000
        ).run()
        assert result.reports["b"]["marks"] >= 1


class TestOracleValidation:
    def test_missing_route_info_raises(self, complete_graph_small):
        g = complete_graph_small
        # Target set containing a vertex with no route and not adjacent:
        # on a complete graph everything is adjacent, so build a sparse case.
        from repro.graphs.generators import path_graph

        sparse = path_graph(5)
        prog_a = MainRendezvousA([0, 1, 4])  # 4 is 4 hops away, no via
        prog_b = MarkerB()
        scheduler = SyncScheduler(sparse, prog_a, prog_b, 0, 1, max_rounds=100)
        with pytest.raises(ValueError):
            scheduler.run()

    def test_probe_counter(self, dense_graph_small):
        g = dense_graph_small
        start_a, start_b = pick_edge(g, 6)
        prog_a, prog_b = oracle_programs(g, start_a)
        result = SyncScheduler(
            g, prog_a, prog_b, start_a, start_b, seed=6, max_rounds=500_000
        ).run()
        assert result.reports["a"].get("probes", 0) >= 0
