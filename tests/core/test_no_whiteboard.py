"""Tests for the whiteboard-free algorithm (Algorithm 4 / Theorem 2)."""

from __future__ import annotations

import math
import random

import pytest

from repro.core.api import rendezvous
from repro.core.constants import Constants
from repro.core.no_whiteboard import NoWhiteboardA, NoWhiteboardB, theorem2_programs
from repro.errors import SynchronizationError
from repro.experiments.workloads import run_theorem2_oracle, two_hop_oracle
from repro.graphs.generators import random_graph_with_min_degree
from repro.runtime.scheduler import SyncScheduler


@pytest.fixture(scope="module")
def t2_graph():
    return random_graph_with_min_degree(220, 60, random.Random("t2-tests"))


class TestEndToEnd:
    @pytest.mark.parametrize("seed", range(3))
    def test_meets(self, t2_graph, testing_constants, seed):
        result = rendezvous(t2_graph, "theorem2", seed=seed,
                            constants=testing_constants)
        assert result.met

    def test_no_whiteboard_accesses(self, t2_graph, testing_constants):
        result = rendezvous(t2_graph, "theorem2", seed=0,
                            constants=testing_constants)
        assert result.met
        assert result.whiteboard_reads == 0
        assert result.whiteboard_writes == 0

    def test_shared_constants_required(self):
        with pytest.raises(ValueError):
            NoWhiteboardA(0)
        with pytest.raises(ValueError):
            NoWhiteboardB(0)

    def test_theorem2_programs_share_preset(self, testing_constants):
        a, b = theorem2_programs(10, testing_constants)
        assert a._constants is b._constants  # noqa: SLF001 - deliberate check


class TestBarrier:
    def test_sync_error_when_barrier_too_small(self, t2_graph):
        """A barrier shorter than Construct raises SynchronizationError.

        Run agent a alone: in two-agent runs the incidental collision
        with the waiting agent b usually ends the execution first.
        """
        from repro.runtime.single import run_single_agent

        constants = Constants.testing().with_overrides(sync_multiplier=1e-9)
        prog_a = NoWhiteboardA(t2_graph.min_degree, constants)
        with pytest.raises(SynchronizationError):
            run_single_agent(
                prog_a, t2_graph, t2_graph.vertices[0], rounds=10**9,
                id_space=t2_graph.id_space,
            )

    def test_default_barrier_accommodates_construct(self, t2_graph, testing_constants):
        for seed in range(3):
            result = rendezvous(t2_graph, "theorem2", seed=seed,
                                constants=testing_constants)
            assert result.met


def _edge(graph, seed):
    rng = random.Random(seed)
    edges = list(graph.edges())
    return edges[rng.randrange(len(edges))]


class TestOracleMode:
    def test_oracle_skips_construct(self, t2_graph, testing_constants):
        constants = testing_constants.with_overrides(sync_multiplier=1e-9)
        start_a, start_b = _edge(t2_graph, 0)
        result = run_theorem2_oracle(t2_graph, start_a, start_b, 0, constants)
        assert result.met
        assert result.reports["a"]["construct_rounds"] == 0

    def test_oracle_meets_across_seeds(self, t2_graph, testing_constants):
        constants = testing_constants.with_overrides(sync_multiplier=1e-9)
        start_a, start_b = _edge(t2_graph, 1)
        for seed in range(5):
            result = run_theorem2_oracle(t2_graph, start_a, start_b, seed, constants)
            assert result.met, f"seed {seed}"

    def test_oracle_requires_route_info(self, t2_graph, testing_constants):
        prog_a = NoWhiteboardA(
            t2_graph.min_degree, testing_constants,
            oracle_target_set=[t2_graph.vertices[0], t2_graph.vertices[-1]],
        )
        prog_b = NoWhiteboardB(t2_graph.min_degree, testing_constants)
        start_a = t2_graph.vertices[0]
        start_b = t2_graph.neighbors(start_a)[0]
        scheduler = SyncScheduler(
            t2_graph, prog_a, prog_b, start_a, start_b,
            whiteboards=False, max_rounds=1000,
        )
        if t2_graph.vertices[-1] not in t2_graph.neighbor_set(start_a):
            with pytest.raises(ValueError):
                scheduler.run()


class TestScheduleStats:
    def test_phase_geometry_reported(self, t2_graph, testing_constants):
        constants = testing_constants.with_overrides(sync_multiplier=1e-9)
        start_a, start_b = _edge(t2_graph, 2)
        result = run_theorem2_oracle(t2_graph, start_a, start_b, 3, constants)
        report = result.reports["a"]
        beta = constants.block_width(t2_graph.min_degree)
        assert report["num_phases"] == math.ceil(t2_graph.id_space / beta)
        assert report["phase_length"] == report["dwell"] ** 2
        assert report["slot_overflows"] == 0

    def test_sparseness_holds_at_test_sizes(self, t2_graph, testing_constants):
        constants = testing_constants.with_overrides(sync_multiplier=1e-9)
        start_a, start_b = _edge(t2_graph, 3)
        result = run_theorem2_oracle(t2_graph, start_a, start_b, 4, constants)
        dwell = result.reports["a"]["dwell"]
        # b's sweep cost for its densest block fits inside one repetition.
        assert 4 * result.reports["b"]["max_block_size"] <= dwell
