"""Tests for the high-level rendezvous API and algorithm registry."""

from __future__ import annotations

import random

import pytest

from repro.core.api import (
    ALGORITHMS,
    default_round_budget,
    pick_adjacent_starts,
    rendezvous,
)
from repro.core.constants import Constants
from repro.errors import ReproError
from repro.graphs.generators import complete_graph, cycle_graph


class TestRegistry:
    def test_expected_algorithms_registered(self):
        assert set(ALGORITHMS) == {
            "theorem1", "theorem2", "trivial", "explore",
            "random-walk", "anderson-weber",
        }

    def test_whiteboard_flags(self):
        assert ALGORITHMS["theorem1"].uses_whiteboards
        assert not ALGORITHMS["theorem2"].uses_whiteboards
        assert ALGORITHMS["anderson-weber"].uses_whiteboards
        assert not ALGORITHMS["explore"].uses_whiteboards

    def test_descriptions_nonempty(self):
        for spec in ALGORITHMS.values():
            assert spec.description

    def test_unknown_algorithm(self):
        with pytest.raises(ReproError):
            rendezvous(complete_graph(8), algorithm="nope")


class TestBudgets:
    def test_budgets_positive(self, dense_graph_small):
        for name in ALGORITHMS:
            assert default_round_budget(name, dense_graph_small) > 0

    def test_trivial_budget_scales_with_degree(self):
        small = default_round_budget("trivial", complete_graph(16))
        large = default_round_budget("trivial", complete_graph(64))
        assert large > small

    def test_explicit_budget_respected(self, dense_graph_small):
        result = rendezvous(
            dense_graph_small, "random-walk", seed=0, max_rounds=3
        )
        assert result.rounds <= 3


class TestStartSelection:
    def test_pick_adjacent_starts_is_edge(self, dense_graph_small):
        rng = random.Random(0)
        for _ in range(20):
            a, b = pick_adjacent_starts(dense_graph_small, rng)
            assert dense_graph_small.has_edge(a, b)

    def test_pick_adjacent_starts_deterministic(self, dense_graph_small):
        assert pick_adjacent_starts(
            dense_graph_small, random.Random(5)
        ) == pick_adjacent_starts(dense_graph_small, random.Random(5))

    def test_explicit_starts_used(self):
        g = cycle_graph(10)
        result = rendezvous(g, "trivial", start_a=0, start_b=1, seed=0)
        assert result.met
        assert result.meeting_vertex in (0, 1)

    def test_default_starts_are_adjacent(self, dense_graph_small):
        result = rendezvous(dense_graph_small, "trivial", seed=3)
        assert result.met


class TestSeeding:
    def test_same_seed_same_result(self, dense_graph_small):
        r1 = rendezvous(dense_graph_small, "random-walk", seed=9, max_rounds=50_000)
        r2 = rendezvous(dense_graph_small, "random-walk", seed=9, max_rounds=50_000)
        assert r1.rounds == r2.rounds
        assert r1.meeting_vertex == r2.meeting_vertex

    def test_different_seeds_differ(self, dense_graph_small):
        rounds = {
            rendezvous(dense_graph_small, "random-walk", seed=s,
                       max_rounds=50_000).rounds
            for s in range(6)
        }
        assert len(rounds) > 1
