"""Tests for the LocalMap route store."""

from __future__ import annotations

import pytest

from repro.core.knowledge import LocalMap
from repro.errors import ProtocolError


class TestLocalMap:
    def test_home_route_is_empty(self):
        lm = LocalMap(5)
        assert lm.route(5) == ()
        assert lm.route_length(5) == 0
        assert 5 in lm

    def test_direct_route(self):
        lm = LocalMap(0)
        lm.add_direct(3)
        assert lm.route(3) == (3,)
        assert lm.route_length(3) == 1

    def test_via_route(self):
        lm = LocalMap(0)
        lm.add_direct(1)
        lm.add_via(1, 9)
        assert lm.route(9) == (1, 9)
        assert lm.route_length(9) == 2

    def test_shorter_route_kept(self):
        lm = LocalMap(0)
        lm.add_direct(1)
        lm.add_via(1, 2)
        assert lm.route(2) == (1, 2)
        lm.add_direct(2)  # direct edge discovered later
        assert lm.route(2) == (2,)

    def test_longer_route_ignored(self):
        lm = LocalMap(0)
        lm.add_direct(2)
        lm.add_direct(1)
        lm.add_via(1, 2)
        assert lm.route(2) == (2,)

    def test_add_direct_home_noop(self):
        lm = LocalMap(0)
        lm.add_direct(0)
        assert lm.route(0) == ()

    def test_via_unknown_vertex_raises(self):
        lm = LocalMap(0)
        with pytest.raises(ProtocolError):
            lm.add_via(7, 8)

    def test_unknown_route_raises(self):
        lm = LocalMap(0)
        with pytest.raises(ProtocolError):
            lm.route(42)

    def test_known_vertices(self):
        lm = LocalMap(0)
        lm.add_direct(1)
        lm.add_via(1, 2)
        assert lm.known_vertices() == frozenset({0, 1, 2})
        assert len(lm) == 3
