"""Tests for the constants presets and derived quantities."""

from __future__ import annotations

import math

import pytest

from repro.core.constants import Constants


class TestPresets:
    def test_paper_values_match_the_paper(self):
        c = Constants.paper()
        assert c.sample_multiplier == 96.0
        # l = ceil(150 ln n): threshold_ratio * multiplier == 150.
        assert c.threshold_ratio * c.sample_multiplier == pytest.approx(150.0)
        assert c.heavy_divisor == 8.0
        assert c.light_divisor == 2.0
        assert c.phi_multiplier == 4.0
        assert c.sparse_c2 == 18.0

    def test_ratios_preserved_across_presets(self):
        paper = Constants.paper()
        for preset in (Constants.tuned(), Constants.testing(), Constants.aggressive()):
            assert preset.threshold_ratio == pytest.approx(paper.threshold_ratio)
            assert preset.sparse_c2 / preset.phi_multiplier == pytest.approx(
                paper.sparse_c2 / paper.phi_multiplier
            )

    def test_with_overrides(self):
        c = Constants.tuned().with_overrides(sample_multiplier=3.0, preset="x")
        assert c.sample_multiplier == 3.0
        assert c.preset == "x"
        assert Constants.tuned().sample_multiplier == 8.0  # original untouched

    def test_frozen(self):
        with pytest.raises(Exception):
            Constants.tuned().sample_multiplier = 1.0  # type: ignore[misc]


class TestDerivedQuantities:
    def test_paper_sample_count(self):
        c = Constants.paper()
        n_prime = 1000
        gamma, alpha = 50, 10.0
        expected = math.ceil(96 * gamma * math.log(n_prime) / alpha)
        assert c.sample_count(gamma, alpha, n_prime) == expected

    def test_sample_count_empty_gamma(self):
        assert Constants.paper().sample_count(0, 5.0, 100) == 0

    def test_paper_threshold(self):
        c = Constants.paper()
        assert c.sample_threshold(1000) == math.ceil(150 * math.log(1000))

    def test_alpha_and_light_bound(self):
        c = Constants.paper()
        assert c.alpha(80) == 10.0
        assert c.light_bound(80) == 40.0

    def test_candidate_checks(self):
        c = Constants.paper()
        assert c.candidate_check_count(1024) == math.ceil(4 * 10)

    def test_phi_probability_caps_at_one(self):
        c = Constants.paper()
        assert c.phi_probability(1, 100) == 1.0
        assert 0 < c.phi_probability(10**6, 100) < 1.0

    def test_block_width(self):
        c = Constants.paper()
        assert c.block_width(100) == 10
        assert c.block_width(101) == 11
        assert c.block_width(0) == 1

    def test_dwell_exceeds_sweep_cost_margin(self):
        """The slack guarantees dwell > 4 * sparse bound (DESIGN.md #5)."""
        for preset in (Constants.paper(), Constants.tuned(), Constants.testing()):
            for n_prime in (100, 10_000, 10**6):
                dwell = preset.dwell_rounds(n_prime)
                sweep_bound = 4 * preset.sparse_c2 * Constants.log_term(n_prime)
                assert dwell > sweep_bound

    def test_phase_length_is_dwell_squared(self):
        c = Constants.tuned()
        assert c.phase_length(5000) == c.dwell_rounds(5000) ** 2

    def test_sync_barrier_monotone_in_n(self):
        c = Constants.tuned()
        assert c.sync_barrier(2000, 50) > c.sync_barrier(1000, 50)
        assert c.sync_barrier(1000, 100) < c.sync_barrier(1000, 50)

    def test_log_term_floor(self):
        assert Constants.log_term(1) == 1.0
        assert Constants.log_term(2) == pytest.approx(math.log(2), abs=0.4)

    def test_iteration_cap_generous(self):
        c = Constants.tuned()
        assert c.construct_iteration_cap(1000, 100) > 2 * 1000 / 100
