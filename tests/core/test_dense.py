"""Tests for α-heaviness and the dense condition (Definitions 2-3)."""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.core.dense import (
    dense_violations,
    heaviness,
    heavy_set,
    is_alpha_heavy,
    is_alpha_light,
    is_dense_set,
    light_set,
)
from repro.graphs.generators import (
    complete_graph,
    path_graph,
    random_graph_with_min_degree,
    star_graph,
)


class TestHeaviness:
    def test_counts_closed_neighborhood_intersection(self):
        g = path_graph(5)  # 0-1-2-3-4
        assert heaviness(g, 2, {1, 2, 3}) == 3
        assert heaviness(g, 0, {2, 3}) == 0
        assert heaviness(g, 0, {1}) == 1

    def test_self_counts(self):
        g = path_graph(3)
        assert heaviness(g, 1, {1}) == 1

    def test_heavy_and_light_partition(self):
        g = complete_graph(6)
        targets = {0, 1, 2}
        for v in g.vertices:
            assert is_alpha_heavy(g, v, targets, 3.0) != is_alpha_light(
                g, v, targets, 3.0
            )

    def test_heavy_set_and_light_set_cover_universe(self):
        g = random_graph_with_min_degree(50, 10, random.Random(0))
        targets = set(g.vertices[:20])
        heavy = heavy_set(g, targets, 5.0)
        light = light_set(g, targets, 5.0)
        assert heavy | light == frozenset(g.vertices)
        assert not heavy & light

    def test_universe_restriction(self):
        g = complete_graph(8)
        heavy = heavy_set(g, {0, 1}, 1.0, universe=[3, 4])
        assert heavy <= {3, 4}

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 200), alpha=st.floats(1.0, 10.0))
    def test_property_monotone_in_targets(self, seed, alpha):
        """Proposition 1: heaviness is monotone under target growth."""
        rng = random.Random(seed)
        g = random_graph_with_min_degree(40, 8, rng)
        small = set(rng.sample(g.vertices, 10))
        large = small | set(rng.sample(g.vertices, 10))
        for v in g.vertices:
            if is_alpha_heavy(g, v, small, alpha):
                assert is_alpha_heavy(g, v, large, alpha)


class TestDenseCondition:
    def test_whole_graph_is_dense_for_complete(self):
        g = complete_graph(10)
        assert is_dense_set(g, 0, g.vertices, alpha=9 / 8, beta=1)

    def test_star_center_closed_neighborhood(self):
        g = star_graph(10, center=0)
        # T = all vertices: every leaf u has N+(u) = {u, 0}; heaviness 2.
        assert is_dense_set(g, 0, g.vertices, alpha=2.0, beta=1)
        assert not is_dense_set(g, 0, g.vertices, alpha=3.0, beta=1)

    def test_origin_must_be_member(self):
        g = complete_graph(5)
        violations = dense_violations(g, 0, [1, 2, 3, 4], alpha=1.0, beta=1)
        assert any("origin" in v for v in violations)

    def test_beta_violation_detected(self):
        g = path_graph(6)
        violations = dense_violations(g, 0, [0, 1, 5], alpha=1.0, beta=2)
        assert any("distance" in v for v in violations)

    def test_heaviness_violation_detected(self):
        g = path_graph(5)
        violations = dense_violations(g, 0, [0], alpha=2.0, beta=2)
        assert any("alpha-heavy" in v for v in violations)

    def test_two_hop_closed_neighborhood_is_dense(self):
        """N⁺(N⁺(v)) always satisfies the (v, δ/8, 2)-dense condition."""
        rng = random.Random(3)
        g = random_graph_with_min_degree(80, 20, rng)
        origin = g.vertices[0]
        members = g.closed_neighborhood_of_set(g.closed_neighbor_set(origin))
        assert is_dense_set(g, origin, members, alpha=g.min_degree / 8, beta=2)
