"""Tests for Construct — Algorithm 3 / Lemmas 3-8."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.constants import Constants
from repro.core.construct import ConstructOnlyProgram
from repro.core.dense import dense_violations, is_dense_set
from repro.graphs.generators import (
    complete_graph,
    random_geometric_dense_graph,
    random_graph_with_min_degree,
)
from repro.runtime.single import run_single_agent


def run_construct(graph, start, delta, constants, seed=0, degree_floor=None):
    program = ConstructOnlyProgram(delta, constants, degree_floor)
    run_single_agent(
        program, graph, start, rounds=10**9, seed=seed, id_space=graph.id_space
    )
    return program.outcome


class TestConstructOutput:
    def test_dense_condition_holds(self, dense_graph_small, testing_constants):
        g = dense_graph_small
        delta = g.min_degree
        outcome = run_construct(g, g.vertices[0], delta, testing_constants)
        assert outcome.completed
        violations = dense_violations(
            g, g.vertices[0], outcome.target_set, testing_constants.alpha(delta), 2
        )
        assert violations == []

    def test_target_contains_closed_neighborhood_of_selected(
        self, dense_graph_small, testing_constants
    ):
        g = dense_graph_small
        outcome = run_construct(g, g.vertices[0], g.min_degree, testing_constants)
        expected = g.closed_neighborhood_of_set(outcome.selected)
        assert frozenset(outcome.target_set) == expected

    def test_selected_within_closed_neighborhood(
        self, dense_graph_small, testing_constants
    ):
        g = dense_graph_small
        start = g.vertices[0]
        outcome = run_construct(g, start, g.min_degree, testing_constants)
        closed = g.closed_neighbor_set(start)
        assert set(outcome.selected) <= closed
        assert outcome.selected[0] == start

    def test_routes_cover_target_set(self, dense_graph_small, testing_constants):
        g = dense_graph_small
        outcome = run_construct(g, g.vertices[0], g.min_degree, testing_constants)
        for vertex in outcome.target_set:
            assert outcome.local_map.route_length(vertex) <= 2

    def test_complete_graph_single_iteration(self, testing_constants):
        g = complete_graph(50)
        outcome = run_construct(g, 0, g.min_degree, testing_constants)
        assert outcome.completed
        assert outcome.iterations == 1
        assert len(outcome.target_set) == 50

    def test_lemma6_iteration_bound(self, testing_constants):
        """Lemma 6: O(n/δ) iterations (we allow the cap's slack)."""
        rng = random.Random(11)
        g = random_graph_with_min_degree(300, 60, rng)
        outcome = run_construct(g, g.vertices[0], g.min_degree, testing_constants)
        assert outcome.completed
        assert outcome.iterations <= 8 * (300 / 60) + 16

    def test_lemma7_strict_runs_logarithmic(self, testing_constants):
        rng = random.Random(13)
        g = random_graph_with_min_degree(400, 90, rng)
        outcome = run_construct(g, g.vertices[0], g.min_degree, testing_constants)
        assert outcome.strict_runs <= 12  # O(log n) with slack

    def test_deterministic_given_seed(self, dense_graph_small, testing_constants):
        g = dense_graph_small
        first = run_construct(g, g.vertices[0], g.min_degree, testing_constants, seed=4)
        second = run_construct(g, g.vertices[0], g.min_degree, testing_constants, seed=4)
        assert first.target_set == second.target_set
        assert first.iterations == second.iterations

    def test_geometric_graphs(self, testing_constants):
        g = random_geometric_dense_graph(150, 35, random.Random(2))
        outcome = run_construct(g, g.vertices[0], g.min_degree, testing_constants)
        assert outcome.completed
        assert is_dense_set(
            g, g.vertices[0], outcome.target_set,
            testing_constants.alpha(g.min_degree), 2,
        )

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 50))
    def test_property_dense_condition_across_seeds(self, seed):
        """Lemma 8 as a property: every run yields a dense set."""
        constants = Constants.testing()
        rng = random.Random(f"prop:{seed}")
        g = random_graph_with_min_degree(120, 30, rng)
        outcome = run_construct(g, g.vertices[0], g.min_degree, constants, seed=seed)
        assert outcome.completed
        assert is_dense_set(
            g, g.vertices[0], outcome.target_set,
            constants.alpha(g.min_degree), 2,
        )


class TestDegreeGuard:
    def test_floor_below_min_degree_completes(self, dense_graph_small, testing_constants):
        g = dense_graph_small
        outcome = run_construct(
            g, g.vertices[0], g.min_degree, testing_constants,
            degree_floor=1,
        )
        assert outcome.completed

    def test_floor_above_some_degree_aborts(self, testing_constants):
        # Graph with one low-degree vertex reachable from the start.
        rng = random.Random(5)
        g = random_graph_with_min_degree(100, 20, rng)
        floor = g.max_degree + 1  # impossible floor: trips immediately
        outcome = run_construct(
            g, g.vertices[0], g.min_degree, testing_constants, degree_floor=floor
        )
        assert not outcome.completed
        assert outcome.target_set is None

    def test_abort_reports_observed_degree(self, testing_constants):
        rng = random.Random(6)
        g = random_graph_with_min_degree(100, 20, rng)
        outcome = run_construct(
            g, g.vertices[0], g.min_degree, testing_constants,
            degree_floor=g.max_degree + 1,
        )
        assert outcome.observed_min_degree <= g.max_degree


class TestConstructOnlyProgram:
    def test_report_shape(self, dense_graph_small, testing_constants):
        g = dense_graph_small
        program = ConstructOnlyProgram(g.min_degree, testing_constants)
        run_single_agent(program, g, g.vertices[0], rounds=10**9, seed=0,
                         id_space=g.id_space)
        report = program.report()
        assert report["completed"]
        assert report["iterations"] >= 1
        assert report["target_set_size"] == len(program.outcome.target_set)

    def test_report_empty_before_run(self, testing_constants):
        program = ConstructOnlyProgram(10, testing_constants)
        assert program.report() == {}
