"""Tests for the doubling estimation of δ (Section 4.1 / Corollary 2)."""

from __future__ import annotations

import random

import pytest

from repro.core.api import rendezvous
from repro.core.constants import Constants
from repro.core.dense import is_dense_set
from repro.core.estimation import estimate_and_construct
from repro.graphs.generators import (
    random_graph_with_min_degree,
    star_graph,
)
from repro.runtime.agent import AgentProgram
from repro.runtime.single import run_single_agent


class EstimationHarness(AgentProgram):
    def __init__(self, constants):
        self._constants = constants
        self.result = None

    def run(self, ctx):
        self.result = yield from estimate_and_construct(ctx, self._constants)


def run_estimation(graph, start, constants, seed=0):
    harness = EstimationHarness(constants)
    run_single_agent(harness, graph, start, rounds=10**9, seed=seed,
                     id_space=graph.id_space)
    return harness.result


class TestEstimateAndConstruct:
    def test_completes_on_dense_graph(self, dense_graph_small, testing_constants):
        g = dense_graph_small
        result = run_estimation(g, g.vertices[0], testing_constants)
        assert result.outcome.completed
        assert 1 <= result.delta_estimate <= g.max_degree

    def test_estimate_never_exceeds_start_half_degree(
        self, dense_graph_small, testing_constants
    ):
        g = dense_graph_small
        start = g.vertices[0]
        result = run_estimation(g, start, testing_constants)
        assert result.delta_estimate <= max(1, g.degree(start) // 2)
        assert result.initial_estimate == max(1, g.degree(start) // 2)

    def test_dense_condition_for_final_estimate(
        self, dense_graph_small, testing_constants
    ):
        """Corollary 2: the output is (a, δ'/8, 2)-dense."""
        g = dense_graph_small
        result = run_estimation(g, g.vertices[0], testing_constants)
        assert is_dense_set(
            g, g.vertices[0], result.outcome.target_set,
            testing_constants.alpha(result.delta_estimate), 2,
        )

    def test_restarts_on_skewed_graph(self, testing_constants):
        """A star from a high-degree start forces halving restarts."""
        g = star_graph(64, center=0)
        result = run_estimation(g, 0, testing_constants)
        assert result.outcome.completed
        assert result.restarts >= 1
        assert result.delta_estimate == 1

    def test_restart_count_logarithmic(self, testing_constants):
        g = star_graph(256, center=0)
        result = run_estimation(g, 0, testing_constants)
        # deg/2 = 127 halves to 1 in ~7 steps.
        assert result.restarts <= 9


class TestApiIntegration:
    def test_estimate_flag(self, dense_graph_small, testing_constants):
        result = rendezvous(
            dense_graph_small, "theorem1", seed=0, delta="estimate",
            constants=testing_constants,
        )
        assert result.met

    def test_estimate_unsupported_for_theorem2(self, dense_graph_small):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            rendezvous(dense_graph_small, "theorem2", delta="estimate")

    def test_explicit_delta_value(self, dense_graph_small, testing_constants):
        result = rendezvous(
            dense_graph_small, "theorem1", seed=1,
            delta=dense_graph_small.min_degree // 2,
            constants=testing_constants,
        )
        assert result.met
