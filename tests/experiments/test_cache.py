"""Tests for the content-addressed result cache."""

from __future__ import annotations

import json

import pytest

from repro.experiments.cache import ResultCache, content_hash
from repro.experiments.harness import run_trial
from repro.graphs.generators import complete_graph


def one_record():
    return run_trial(complete_graph(16), "trivial", seed=0)


class TestContentHash:
    def test_stable_across_key_order(self):
        assert content_hash({"a": 1, "b": [2, 3]}) == content_hash({"b": [2, 3], "a": 1})

    def test_sensitive_to_values(self):
        assert content_hash({"a": 1}) != content_hash({"a": 2})

    def test_hex_digest(self):
        digest = content_hash("x")
        assert len(digest) == 64
        int(digest, 16)  # raises if not hex


class TestResultCache:
    def test_round_trip(self, tmp_path):
        record = one_record()
        with ResultCache(tmp_path, "abc123") as cache:
            cache.append("k1", record)
        loaded = ResultCache(tmp_path, "abc123").load()
        assert loaded == {"k1": record}

    def test_missing_file_loads_empty(self, tmp_path):
        assert ResultCache(tmp_path, "nothing").load() == {}

    def test_corrupt_lines_skipped(self, tmp_path):
        record = one_record()
        cache = ResultCache(tmp_path, "abc123")
        cache.append("k1", record)
        cache.close()
        with cache.path.open("a", encoding="utf-8") as handle:
            handle.write("{truncated\n")
            handle.write("\n")
            handle.write(json.dumps({"no_key": 1}) + "\n")
        assert ResultCache(tmp_path, "abc123").load() == {"k1": record}

    def test_duplicate_keys_keep_last(self, tmp_path):
        first = one_record()
        second = run_trial(complete_graph(16), "trivial", seed=1)
        with ResultCache(tmp_path, "abc123") as cache:
            cache.append("k", first)
            cache.append("k", second)
        assert ResultCache(tmp_path, "abc123").load() == {"k": second}

    def test_reset_discards(self, tmp_path):
        cache = ResultCache(tmp_path, "abc123")
        cache.append("k1", one_record())
        cache.reset()
        assert not cache.path.exists()
        assert cache.load() == {}

    def test_manifest_written_once(self, tmp_path):
        cache = ResultCache(tmp_path, "abc123", spec_payload={"name": "demo"})
        cache.append("k1", one_record())
        cache.close()
        manifest = json.loads(cache.manifest_path.read_text())
        assert manifest == {"name": "demo"}


class TestAppendMany:
    def test_batch_round_trips_like_singles(self, tmp_path):
        records = [run_trial(complete_graph(16), "trivial", seed=s) for s in range(3)]
        with ResultCache(tmp_path, "batched") as cache:
            cache.append_many([(f"k{i}", r) for i, r in enumerate(records)])
        with ResultCache(tmp_path, "single") as cache:
            for i, record in enumerate(records):
                cache.append(f"k{i}", record)
        assert (
            (tmp_path / "batched.jsonl").read_bytes()
            == (tmp_path / "single.jsonl").read_bytes()
        )

    def test_empty_batch_touches_nothing(self, tmp_path):
        cache = ResultCache(tmp_path, "empty")
        cache.append_many([])
        cache.close()
        assert not cache.path.exists()

    def test_batches_and_singles_interleave(self, tmp_path):
        first, second, third = (
            run_trial(complete_graph(16), "trivial", seed=s) for s in range(3)
        )
        with ResultCache(tmp_path, "mix") as cache:
            cache.append("a", first)
            cache.append_many([("b", second), ("c", third)])
        loaded = ResultCache(tmp_path, "mix").load()
        assert loaded == {"a": first, "b": second, "c": third}


class TestIterRecords:
    def test_streams_in_write_order(self, tmp_path):
        records = [run_trial(complete_graph(16), "trivial", seed=s) for s in range(3)]
        with ResultCache(tmp_path, "iter") as cache:
            cache.append_many([(f"k{i}", r) for i, r in enumerate(records)])
        cache = ResultCache(tmp_path, "iter")
        assert list(cache.iter_records()) == [
            (f"k{i}", r) for i, r in enumerate(records)
        ]

    def test_missing_file_yields_nothing(self, tmp_path):
        assert list(ResultCache(tmp_path, "nope").iter_records()) == []

    def test_corrupt_lines_and_duplicates(self, tmp_path):
        record = one_record()
        cache = ResultCache(tmp_path, "dirty")
        cache.append("k", record)
        cache.append("k", record)  # duplicate: first occurrence wins
        cache.close()
        with cache.path.open("a", encoding="utf-8") as handle:
            handle.write("{torn")
        assert list(ResultCache(tmp_path, "dirty").iter_records()) == [("k", record)]


class TestCorruptLineWarning:
    def test_iter_records_warns_on_skipped_lines(self, tmp_path):
        record = one_record()
        cache = ResultCache(tmp_path, "dirty")
        cache.append("k", record)
        cache.close()
        with cache.path.open("a", encoding="utf-8") as handle:
            handle.write("{torn")
        with pytest.warns(UserWarning, match="skipped 1 corrupt line"):
            assert list(ResultCache(tmp_path, "dirty").iter_records()) == [
                ("k", record)
            ]

    def test_iter_records_clean_file_is_silent(self, tmp_path):
        import warnings

        record = one_record()
        with ResultCache(tmp_path, "clean") as cache:
            cache.append("k", record)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert list(ResultCache(tmp_path, "clean").iter_records()) == [
                ("k", record)
            ]
