"""Smoke + contract tests for the experiment registry.

Full experiments run in the benchmark suite; here we verify the
registry contract and a few cheap invariants (oracle helpers and the
registry's claim coverage).
"""

from __future__ import annotations

import random

from repro.core.dense import is_dense_set
from repro.experiments.workloads import (
    EXPERIMENTS,
    run_theorem2_oracle,
    two_hop_oracle,
)
from repro.graphs.generators import random_graph_with_min_degree


class TestRegistryContract:
    def test_all_paper_claims_covered(self):
        keys = set(EXPERIMENTS)
        expected = {
            "T1-SCALING", "T1-DELTA", "T2-PHASES", "T2-FULL", "CONSTRUCT",
            "SAMPLE-ACC", "MAIN-RDV", "ESTIMATION", "LB-MINDEG", "LB-KT0",
            "LB-DIST2", "LB-DET", "COMPLETE-AW", "SHOOTOUT",
            "ORACLES", "EXT-GATHER", "EXT-DIST2", "PAR-SWEEP",
            "FAULT-TOL", "DYN-CHURN",
            "ABL-CONSTANTS", "ABL-THRESHOLD", "ABL-DWELL",
        }
        assert keys == expected

    def test_specs_have_claims_and_runners(self):
        for spec in EXPERIMENTS.values():
            assert spec.claim
            assert spec.title
            assert callable(spec.runner)

    def test_every_theorem_has_an_experiment(self):
        claims = " ".join(spec.claim for spec in EXPERIMENTS.values())
        for reference in ("Theorem 1", "Theorem 2", "Theorem 3", "Theorem 4",
                          "Theorem 5", "Theorem 6", "Lemma 1", "Lemma 2",
                          "Corollary 2"):
            assert reference in claims, f"no experiment covers {reference}"


class TestTwoHopOracle:
    def test_oracle_set_is_dense(self):
        g = random_graph_with_min_degree(100, 25, random.Random(0))
        start = g.vertices[0]
        members, via = two_hop_oracle(g, start)
        assert is_dense_set(g, start, members, g.min_degree / 8, 2)

    def test_via_routes_are_valid(self):
        g = random_graph_with_min_degree(100, 25, random.Random(1))
        start = g.vertices[0]
        members, via = two_hop_oracle(g, start)
        closed = g.closed_neighbor_set(start)
        for vertex in members:
            if vertex in closed:
                assert vertex not in via
            else:
                assert g.has_edge(start, via[vertex])
                assert g.has_edge(via[vertex], vertex)

    def test_avoid_via_respected_when_possible(self):
        g = random_graph_with_min_degree(100, 25, random.Random(2))
        start = g.vertices[0]
        avoid = frozenset(sorted(g.neighbor_set(start))[:5])
        _, via = two_hop_oracle(g, start, avoid_via=avoid)
        used = set(via.values())
        # Avoided intermediates appear only as a last resort; with
        # delta = 25 alternatives almost always exist.
        assert len(used & avoid) <= 1


class TestOracleTheorem2:
    def test_runs_and_meets(self, testing_constants):
        g = random_graph_with_min_degree(150, 40, random.Random(3))
        constants = testing_constants.with_overrides(sync_multiplier=1e-9)
        edges = list(g.edges())
        start_a, start_b = edges[0]
        result = run_theorem2_oracle(g, start_a, start_b, 0, constants)
        assert result.met
