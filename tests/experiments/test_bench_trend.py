"""Unit tests for the benchmark trend checker (``tools/check_bench_trend.py``)."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

TOOL = Path(__file__).resolve().parents[2] / "tools" / "check_bench_trend.py"
spec = importlib.util.spec_from_file_location("check_bench_trend", TOOL)
trend = importlib.util.module_from_spec(spec)
spec.loader.exec_module(trend)


def payload(speedup: float, mode: str = "quick") -> dict:
    return {
        "bench": "sweep_throughput",
        "mode": mode,
        "workloads": {
            "w": {
                "baseline": {"median_s": speedup, "samples": 3},
                "planned": {"median_s": 1.0, "samples": 3},
                "speedup": speedup,
            }
        },
        "metrics": {"aggregate_speedup": speedup},
    }


def write(directory: Path, name: str, data: dict) -> None:
    directory.mkdir(parents=True, exist_ok=True)
    (directory / f"BENCH_{name}.json").write_text(json.dumps(data))


class TestMedianSpeedups:
    def test_extracts_workload_and_aggregate(self):
        speedups = trend.median_speedups(payload(4.0))
        assert speedups["w"] == 4.0
        assert speedups["<aggregate>"] == 4.0

    def test_ignores_workloads_without_a_named_baseline(self):
        data = payload(4.0)
        data["workloads"]["w"] = {
            "left": {"median_s": 1.0}, "right": {"median_s": 2.0}
        }
        assert "w" not in trend.median_speedups(data)


class TestCompare:
    def test_within_threshold_passes(self):
        _, regressions = trend.compare("b", payload(4.0), payload(3.2), 0.25)
        assert regressions == []

    def test_beyond_threshold_fails(self):
        _, regressions = trend.compare("b", payload(4.0), payload(2.5), 0.25)
        assert regressions and "median speedup fell" in regressions[0]

    def test_mode_mismatch_is_skipped(self):
        lines, regressions = trend.compare(
            "b", payload(4.0, mode="full"), payload(1.0, mode="quick"), 0.25
        )
        assert regressions == []
        assert any("skipped" in line for line in lines)


class TestMainEndToEnd:
    def test_ok_run(self, tmp_path, capsys):
        write(tmp_path / "base", "sweep_throughput", payload(4.0))
        write(tmp_path / "fresh", "sweep_throughput", payload(3.9))
        code = trend.main([
            "--baseline", str(tmp_path / "base"), "--fresh", str(tmp_path / "fresh"),
        ])
        assert code == 0
        assert "OK" in capsys.readouterr().out

    def test_regression_fails(self, tmp_path, capsys):
        write(tmp_path / "base", "engine", payload(4.0))
        write(tmp_path / "fresh", "engine", payload(1.5))
        code = trend.main([
            "--baseline", str(tmp_path / "base"), "--fresh", str(tmp_path / "fresh"),
        ])
        assert code == 1
        assert "regression" in capsys.readouterr().err

    def test_missing_baseline_dir_is_usage_error(self, tmp_path):
        assert trend.main(["--baseline", str(tmp_path / "absent")]) == 2

    def test_missing_files_are_skipped(self, tmp_path, capsys):
        (tmp_path / "base").mkdir()
        (tmp_path / "fresh").mkdir()
        code = trend.main([
            "--baseline", str(tmp_path / "base"), "--fresh", str(tmp_path / "fresh"),
        ])
        assert code == 0
        assert "skipped" in capsys.readouterr().out

    def test_threshold_override_loosens_one_benchmark(self, tmp_path, capsys):
        # A 4.0x -> 2.5x drop fails the default 25% threshold (see
        # test_regression_fails) but passes a 0.5 override for that one
        # benchmark — without loosening any other gate.
        write(tmp_path / "base", "engine", payload(4.0))
        write(tmp_path / "fresh", "engine", payload(2.5))
        args = ["--baseline", str(tmp_path / "base"), "--fresh", str(tmp_path / "fresh")]
        assert trend.main(args) == 1
        capsys.readouterr()
        assert trend.main(args + ["--threshold-for", "engine=0.5"]) == 0
        # An override for a *different* benchmark changes nothing.
        capsys.readouterr()
        assert trend.main(args + ["--threshold-for", "warehouse=0.5"]) == 1

    def test_threshold_override_rejects_unknown_names(self, tmp_path, capsys):
        import pytest

        (tmp_path / "base").mkdir()
        for bad in ("nope=0.5", "engine", "engine=lots"):
            with pytest.raises(SystemExit) as excinfo:
                trend.main([
                    "--baseline", str(tmp_path / "base"),
                    "--threshold-for", bad,
                ])
            assert excinfo.value.code == 2
        capsys.readouterr()


class TestFlakeGuards:
    def test_near_parity_workloads_are_skipped(self):
        base = payload(4.0)
        base["workloads"]["parity"] = {
            "baseline": {"median_s": 1.1}, "planned": {"median_s": 1.0},
        }
        fresh = payload(3.9)
        fresh["workloads"]["parity"] = {
            "baseline": {"median_s": 0.5}, "planned": {"median_s": 1.0},
        }
        lines, regressions = trend.compare("b", base, fresh, 0.25)
        assert regressions == []  # a 1.1x -> 0.5x swing carries no signal
        assert any("near parity" in line for line in lines)

    def test_multiprocess_benchmarks_use_looser_threshold(self):
        # 12x -> 6x is within the 60% multi-process allowance...
        _, regressions = trend.compare(
            "sweep_fabric", payload(12.0), payload(6.0), 0.25
        )
        assert regressions == []
        # ...but a catastrophic collapse still fails.
        _, regressions = trend.compare(
            "sweep_fabric", payload(12.0), payload(3.0), 0.25
        )
        assert regressions
