"""Tests for the process-pool sweep engine."""

from __future__ import annotations

import json
import random

import pytest

from repro.errors import ReproError
from repro.experiments.harness import aggregate_rounds, repeat_trials, run_trial
from repro.experiments.parallel import (
    CONSTANTS_PRESETS,
    GRAPH_FAMILIES,
    SweepSpec,
    _GraphChunk,
    _run_chunk,
    ambient_workers,
    build_graph,
    clear_instance_cache,
    configure,
    map_trials,
    plan_for_instance,
    resolve_delta,
    resolve_workers,
    run_sweep,
    shutdown_fabric,
)
from repro.experiments.results_io import write_records_jsonl
from repro.graphs.generators import complete_graph


def small_spec(**overrides) -> SweepSpec:
    settings = dict(
        name="test",
        families=("complete", "er-min-degree"),
        ns=(48,),
        deltas=("n^0.75",),
        algorithms=("trivial",),
        seeds=tuple(range(4)),
    )
    settings.update(overrides)
    return SweepSpec(**settings)


class TestSweepSpec:
    def test_points_enumeration_is_canonical(self):
        spec = small_spec()
        points = spec.points()
        assert len(points) == 2 * 1 * 1 * 1 * 4
        assert [p.index for p in points] == list(range(8))
        assert points[0].family == "complete"
        assert [p.seed for p in points[:4]] == [0, 1, 2, 3]
        # Two enumerations are identical objects field-for-field.
        assert points == spec.points()

    def test_validation(self):
        with pytest.raises(ReproError):
            small_spec(families=("nope",))
        with pytest.raises(ReproError):
            small_spec(algorithms=("nope",))
        with pytest.raises(ReproError):
            small_spec(preset="nope")
        with pytest.raises(ReproError):
            small_spec(deltas=("sqrt(n)",))
        with pytest.raises(ReproError):
            small_spec(seeds=())

    def test_resolve_delta(self):
        assert resolve_delta("90", 400) == 90
        assert resolve_delta("n^0.75", 400) == max(8, round(400 ** 0.75))
        assert resolve_delta("n^0.5", 9) == 8  # floor of 8

    def test_spec_hash_tracks_content(self):
        spec = small_spec()
        assert spec.spec_hash() == small_spec().spec_hash()
        assert spec.spec_hash() != small_spec(seeds=(0, 1)).spec_hash()
        assert spec.spec_hash() != small_spec(preset="paper").spec_hash()

    def test_build_graph_is_deterministic(self):
        first = build_graph("er-min-degree", 48, "n^0.75")
        second = build_graph("er-min-degree", 48, "n^0.75")
        assert first.n == second.n
        assert all(
            first.neighbors(v) == second.neighbors(v) for v in first.vertices
        )


@pytest.fixture
def counting_family():
    """A temporary graph family whose generator counts its calls."""
    calls: list[tuple[int, int]] = []

    def builder(n, delta, rng):
        calls.append((n, delta))
        return complete_graph(n)

    GRAPH_FAMILIES["counting-test"] = builder
    clear_instance_cache()
    try:
        yield calls
    finally:
        del GRAPH_FAMILIES["counting-test"]
        clear_instance_cache()


class TestInstanceMemoization:
    def test_build_graph_memoized_per_process(self, counting_family):
        first = build_graph("counting-test", 20, "8")
        second = build_graph("counting-test", 20, "8")
        assert first is second
        assert counting_family == [(20, 8)]
        # A different tag is a different instance (and a new call).
        build_graph("counting-test", 24, "8")
        assert counting_family == [(20, 8), (24, 8)]

    def test_one_generator_call_per_worker_per_instance(self, counting_family):
        """Two chunks of one instance in one process: one generator call."""
        chunk = _GraphChunk(
            family="counting-test", n=20, delta_spec="8",
            preset="tuned", max_rounds=None,
            trials=((0, "trivial", "none", 0), (1, "trivial", "none", 1)),
        )
        again = _GraphChunk(
            family="counting-test", n=20, delta_spec="8",
            preset="tuned", max_rounds=None,
            trials=((2, "trivial", "none", 2),),
        )
        records = dict(_run_chunk(chunk) + _run_chunk(again))
        assert sorted(records) == [0, 1, 2]
        assert counting_family == [(20, 8)], (
            "the worker regenerated a graph it had already built"
        )

    def test_plan_cache_shares_the_memoized_graph(self, counting_family):
        plan = plan_for_instance("counting-test", 20, "8")
        assert plan.graph is build_graph("counting-test", 20, "8")
        assert plan_for_instance("counting-test", 20, "8") is plan
        assert counting_family == [(20, 8)]

    def test_sweep_identical_with_and_without_plan_cache(self):
        """Acceptance: cached-plan sweep == fresh per-trial execution."""
        spec = small_spec()
        clear_instance_cache()
        swept = run_sweep(spec, workers=2)
        fresh = []
        for point in spec.points():
            # Rebuild the instance outside every cache and run the trial
            # without any plan — the pre-plan execution path.
            delta = resolve_delta(point.delta_spec, point.n)
            rng = random.Random(
                f"sweep-graph:{point.family}:{point.n}:{point.delta_spec}"
            )
            graph = GRAPH_FAMILIES[point.family](point.n, delta, rng)
            fresh.append(run_trial(
                graph, point.algorithm, point.seed,
                constants=CONSTANTS_PRESETS[spec.preset](),
                max_rounds=spec.max_rounds,
            ))
        assert list(swept.records) == fresh


class TestRunSweepDeterminism:
    def test_workers_1_vs_4_byte_identical(self, tmp_path):
        spec = small_spec()
        serial = run_sweep(spec, workers=1)
        fanned = run_sweep(spec, workers=4)
        assert serial.records == fanned.records
        serial_path = write_records_jsonl(serial.records, tmp_path / "serial.jsonl")
        fanned_path = write_records_jsonl(fanned.records, tmp_path / "fanned.jsonl")
        assert serial_path.read_bytes() == fanned_path.read_bytes()

    def test_single_instance_grid_still_fans_out(self):
        # One family × one n: the engine must split the instance's
        # trials into sub-chunks rather than collapse to one worker.
        spec = small_spec(families=("complete",), seeds=tuple(range(8)))
        serial = run_sweep(spec, workers=1)
        fanned = run_sweep(spec, workers=4)
        assert fanned.records == serial.records
        assert fanned.workers == 4

    def test_matches_serial_repeat_trials(self):
        spec = small_spec(families=("er-min-degree",))
        result = run_sweep(spec, workers=2)
        graph = build_graph("er-min-degree", 48, "n^0.75")
        serial = repeat_trials(graph, "trivial", range(4))
        assert list(result.records) == serial

    def test_merged_summary_equals_serial_path(self):
        spec = small_spec()
        result = run_sweep(spec, workers=2)
        for (family, n, delta_spec, algorithm, _), records in result.grouped().items():
            graph = build_graph(family, n, delta_spec)
            serial = repeat_trials(graph, algorithm, spec.seeds)
            assert aggregate_rounds(records) == aggregate_rounds(serial)

    def test_summary_table_shape(self):
        result = run_sweep(small_spec(), workers=1)
        table = result.summary_table()
        assert len(table.rows) == 2  # one per (family, n, delta, algorithm)
        assert result.executed == 8
        assert result.cached == 0


class TestSweepCache:
    def test_second_run_is_all_cache_hits(self, tmp_path):
        spec = small_spec()
        first = run_sweep(spec, workers=2, cache_dir=tmp_path)
        second = run_sweep(spec, workers=2, cache_dir=tmp_path)
        assert (first.executed, first.cached) == (8, 0)
        assert (second.executed, second.cached) == (0, 8)
        assert first.records == second.records

    def test_interrupted_sweep_resumes(self, tmp_path):
        spec = small_spec()
        complete = run_sweep(spec, workers=1, cache_dir=tmp_path)
        cache_file = tmp_path / f"{spec.spec_hash()}.jsonl"
        lines = cache_file.read_text().splitlines()
        # Simulate an interrupt: drop the last 3 records and leave a
        # torn partial line behind.
        cache_file.write_text("\n".join(lines[:5]) + "\n" + lines[5][:20])
        resumed = run_sweep(spec, workers=2, cache_dir=tmp_path)
        assert resumed.cached == 5
        assert resumed.executed == 3
        assert resumed.records == complete.records

    def test_no_resume_recomputes(self, tmp_path):
        spec = small_spec()
        run_sweep(spec, workers=1, cache_dir=tmp_path)
        fresh = run_sweep(spec, workers=1, cache_dir=tmp_path, resume=False)
        assert (fresh.executed, fresh.cached) == (8, 0)

    def test_manifest_written(self, tmp_path):
        spec = small_spec()
        run_sweep(spec, workers=1, cache_dir=tmp_path)
        manifest = tmp_path / f"{spec.spec_hash()}.spec.json"
        payload = json.loads(manifest.read_text())
        assert payload["name"] == "test"
        assert payload["algorithms"] == ["trivial"]

    def test_progress_callback_reaches_total(self, tmp_path):
        seen = []
        run_sweep(
            small_spec(), workers=2,
            progress=lambda done, total: seen.append((done, total)),
        )
        assert seen[-1] == (8, 8)


class TestHarnessOptIn:
    def test_repeat_trials_workers_param(self):
        graph = build_graph("complete", 32, "n^0.75")
        serial = repeat_trials(graph, "trivial", range(4))
        fanned = repeat_trials(graph, "trivial", range(4), workers=3)
        assert serial == fanned

    def test_env_var_opt_in(self, monkeypatch):
        graph = build_graph("complete", 32, "n^0.75")
        serial = repeat_trials(graph, "trivial", range(4))
        monkeypatch.setenv("REPRO_PARALLEL_WORKERS", "2")
        assert ambient_workers() == 2
        assert repeat_trials(graph, "trivial", range(4)) == serial

    def test_env_var_zero_means_all_cores(self, monkeypatch):
        import os

        monkeypatch.setenv("REPRO_PARALLEL_WORKERS", "0")
        assert ambient_workers() == (os.cpu_count() or 1)

    def test_env_var_validated(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_WORKERS", "many")
        with pytest.raises(ReproError):
            ambient_workers()

    def test_configure_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_WORKERS", "7")
        configure(3)
        try:
            assert ambient_workers() == 3
        finally:
            configure(None)
        assert ambient_workers() == 7

    def test_resolve_workers(self):
        assert resolve_workers(3) == 3
        assert resolve_workers(None) >= 1
        assert resolve_workers(0) >= 1
        with pytest.raises(ReproError):
            resolve_workers(-1)

    def test_map_trials_preserves_order_and_duplicates(self):
        graph = build_graph("complete", 32, "n^0.75")
        seeds = [3, 1, 1, 2]
        records = map_trials(graph, "trivial", seeds, workers=2)
        assert [r.seed for r in records] == seeds

    def test_map_trials_unpicklable_graph_falls_back(self):
        import pickle

        from repro.graphs.generators import complete_graph
        from repro.graphs.graph import StaticGraph

        class UnpicklableGraph(StaticGraph):
            def __reduce__(self):
                raise pickle.PicklingError("cannot cross process boundary")

        base = complete_graph(24)
        graph = UnpicklableGraph({v: base.neighbors(v) for v in base.vertices})
        serial = repeat_trials(base, "trivial", range(3))
        records = map_trials(graph, "trivial", [0, 1, 2], workers=2)
        assert [r.rounds for r in records] == [r.rounds for r in serial]

    def test_transport_probe_is_cached_per_class(self):
        import pickle

        from repro.graphs.generators import complete_graph
        from repro.graphs.graph import StaticGraph

        probes = []

        class CountingUnpicklable(StaticGraph):
            def __reduce__(self):
                probes.append(1)
                raise pickle.PicklingError("nope")

        base = complete_graph(24)
        graph = CountingUnpicklable({v: base.neighbors(v) for v in base.vertices})
        map_trials(graph, "trivial", [0, 1], workers=2)
        map_trials(graph, "trivial", [2, 3], workers=2)
        assert sum(probes) == 1, "the picklability probe must be memoized per class"

    def test_transport_probe_skips_plain_static_graphs(self, monkeypatch):
        """A plain StaticGraph is never serialized just to test the water."""
        from repro.experiments import parallel
        from repro.graphs.generators import complete_graph

        def forbidden(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("probe pickled a plain StaticGraph")

        monkeypatch.setattr(parallel.pickle, "dumps", forbidden)
        assert parallel._graph_transportable(complete_graph(8))

    def test_instance_varying_picklability_still_falls_back(self):
        """The per-class memo is a heuristic: an instance that turns
        out unpicklable after a picklable sibling primed the cache must
        degrade to the serial loop, not strand tasks on the queue."""
        from repro.graphs.generators import complete_graph
        from repro.graphs.graph import StaticGraph

        class SometimesPicklable(StaticGraph):
            pass  # subclassing adds __dict__, so instances can differ

        base = complete_graph(24)
        adjacency = {v: base.neighbors(v) for v in base.vertices}
        good = SometimesPicklable(adjacency)
        map_trials(good, "trivial", [0, 1], workers=2)  # primes cache: True
        bad = SometimesPicklable(adjacency)
        bad.attachment = lambda: None  # lambdas cannot be pickled
        records = map_trials(bad, "trivial", [0, 1, 2], workers=2)
        serial = repeat_trials(base, "trivial", range(3))
        assert [r.rounds for r in records] == [r.rounds for r in serial]


class TestFabric:
    def test_fabric_and_legacy_paths_byte_identical(self, tmp_path):
        spec = small_spec()
        serial = run_sweep(spec, workers=1)
        fabric = run_sweep(spec, workers=3)
        legacy = run_sweep(spec, workers=3, fabric=False)
        assert serial.records == fabric.records == legacy.records
        paths = []
        for name, result in (("s", serial), ("f", fabric), ("l", legacy)):
            paths.append(write_records_jsonl(result.records, tmp_path / f"{name}.jsonl"))
        assert paths[0].read_bytes() == paths[1].read_bytes() == paths[2].read_bytes()

    def test_pool_persists_across_sweeps(self):
        from repro.experiments import parallel

        run_sweep(small_spec(), workers=3)
        first = parallel._fabric_pool
        assert first is not None and first.alive()
        run_sweep(small_spec(seeds=(0, 1)), workers=3)
        assert parallel._fabric_pool is first, "warm pool was not reused"
        processes = first.processes
        shutdown_fabric()
        assert parallel._fabric_pool is None
        for process in processes:
            process.join(timeout=5)
            assert not process.is_alive()

    def test_shared_plans_disabled_is_identical(self, monkeypatch):
        spec = small_spec()
        with_shm = run_sweep(spec, workers=3)
        monkeypatch.setenv("REPRO_SWEEP_SHM", "0")
        shutdown_fabric()  # new pool under the disabled transport
        without_shm = run_sweep(spec, workers=3)
        assert with_shm.records == without_shm.records

    def test_worker_failure_surfaces_and_pool_recovers(self, monkeypatch):
        # regular graphs need n * delta even — the generator raises in
        # the worker (shm disabled so the parent does not trip first).
        monkeypatch.setenv("REPRO_SWEEP_SHM", "0")
        shutdown_fabric()
        bad = SweepSpec(
            name="bad", families=("regular",), ns=(21,), deltas=("9",),
            algorithms=("trivial",), seeds=(0, 1, 2, 3),
        )
        with pytest.raises(ReproError):
            run_sweep(bad, workers=2)
        # The fabric tore itself down and the next sweep just works.
        good = run_sweep(small_spec(), workers=2)
        assert len(good.records) == 8

    def test_parent_failure_with_shared_plans_is_clean(self):
        bad = SweepSpec(
            name="bad", families=("regular",), ns=(21,), deltas=("9",),
            algorithms=("trivial",), seeds=(0, 1),
        )
        with pytest.raises(ReproError):
            run_sweep(bad, workers=2)


class TestStreamingSweep:
    def test_summaries_identical_to_record_holding_path(self):
        spec = small_spec()
        held = run_sweep(spec, workers=3)
        streamed = run_sweep(spec, workers=3, stream=True)
        held_table = held.summary_table()
        stream_table = streamed.summary_table()
        assert stream_table.rows == held_table.rows
        assert stream_table.notes[0] == held_table.notes[0]  # pooled sketch
        held_sketch, stream_sketch = held.rounds_sketch(), streamed.rounds_sketch()
        assert held_sketch == stream_sketch

    def test_resident_records_bounded_by_batch(self):
        from repro.experiments.parallel import _fabric_batch_size

        spec = small_spec(seeds=tuple(range(16)))  # 32 points
        streamed = run_sweep(spec, workers=3, stream=True)
        assert streamed.executed == 32
        bound = _fabric_batch_size(32, 3)
        assert 0 < streamed.max_resident <= bound

    def test_inline_streaming_is_batched(self):
        spec = small_spec(seeds=tuple(range(8)))  # 16 points, workers=1
        streamed = run_sweep(spec, workers=1, stream=True)
        from repro.experiments.parallel import _STREAM_INLINE_BATCH

        assert streamed.max_resident <= _STREAM_INLINE_BATCH
        held = run_sweep(spec, workers=1)
        assert streamed.summary_table().rows == held.summary_table().rows

    def test_stream_resume_from_cache(self, tmp_path):
        spec = small_spec()
        held = run_sweep(spec, workers=2, cache_dir=tmp_path)
        streamed = run_sweep(spec, workers=2, cache_dir=tmp_path, stream=True)
        assert streamed.cached == 8 and streamed.executed == 0
        assert streamed.summary_table().rows == held.summary_table().rows

    def test_stream_writes_cache_for_later_runs(self, tmp_path):
        spec = small_spec()
        streamed = run_sweep(spec, workers=2, cache_dir=tmp_path, stream=True)
        assert streamed.executed == 8
        held = run_sweep(spec, workers=2, cache_dir=tmp_path)
        assert held.cached == 8 and held.executed == 0


class TestCacheBoundConfiguration:
    """REPRO_INSTANCE_CACHE / REPRO_PLAN_ARENA env-var satellites."""

    def test_bounded_cache_size_default_and_clamp(self, monkeypatch):
        from repro.experiments.parallel import bounded_cache_size

        monkeypatch.delenv("X_TEST_CACHE", raising=False)
        assert bounded_cache_size("X_TEST_CACHE", 32) == 32
        monkeypatch.setenv("X_TEST_CACHE", "7")
        assert bounded_cache_size("X_TEST_CACHE", 32) == 7
        monkeypatch.setenv("X_TEST_CACHE", "0")
        assert bounded_cache_size("X_TEST_CACHE", 32) == 1  # clamped >= 1
        monkeypatch.setenv("X_TEST_CACHE", "-5")
        assert bounded_cache_size("X_TEST_CACHE", 32) == 1
        monkeypatch.setenv("X_TEST_CACHE", "  ")
        assert bounded_cache_size("X_TEST_CACHE", 32) == 32

    def test_bounded_cache_size_rejects_garbage(self, monkeypatch):
        from repro.experiments.parallel import bounded_cache_size

        monkeypatch.setenv("X_TEST_CACHE", "lots")
        with pytest.raises(ReproError, match="not an integer"):
            bounded_cache_size("X_TEST_CACHE", 32)

    def test_instance_memo_bound_defaults(self):
        from repro.experiments.parallel import DEFAULT_INSTANCE_CACHE, _instance_for

        # Import-time binding: in this process the default applies
        # (the subprocess test below covers the override).
        assert _instance_for.cache_info().maxsize >= 1
        assert DEFAULT_INSTANCE_CACHE == 32

    def test_instance_memo_bound_from_env(self):
        import subprocess
        import sys

        code = (
            "from repro.experiments.parallel import _instance_for;"
            "print(_instance_for.cache_info().maxsize)"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            env={**__import__("os").environ, "REPRO_INSTANCE_CACHE": "5",
                 "PYTHONPATH": "src"},
            capture_output=True, text=True, cwd=".",
        )
        assert out.returncode == 0, out.stderr
        assert out.stdout.strip() == "5"

    def test_plan_arena_bound_from_env(self, monkeypatch):
        from repro.experiments.parallel import _PlanArena

        monkeypatch.setenv("REPRO_PLAN_ARENA", "3")
        assert _PlanArena().cap == 3
        monkeypatch.setenv("REPRO_PLAN_ARENA", "0")
        assert _PlanArena().cap == 1
        monkeypatch.delenv("REPRO_PLAN_ARENA")
        from repro.experiments.parallel import DEFAULT_PLAN_ARENA

        assert _PlanArena().cap == DEFAULT_PLAN_ARENA


class TestProfileSetup:
    def test_one_row_per_unique_instance(self):
        from repro.experiments.parallel import profile_setup

        spec = small_spec()  # two families x one n -> two instances
        table = profile_setup(spec)
        assert len(table.rows) == 2
        rendered = table.render()
        assert "generate" in rendered and "compile" in rendered
        assert "trial" in rendered


class TestWarehouseSweep:
    def test_requires_cache_dir(self):
        from repro.errors import WarehouseError

        with pytest.raises(WarehouseError):
            run_sweep(small_spec(), workers=1, warehouse=True)

    def test_records_identical_to_jsonl_cache(self, tmp_path):
        spec = small_spec()
        jsonl = run_sweep(spec, workers=1, cache_dir=tmp_path / "jsonl")
        columnar = run_sweep(
            spec, workers=1, cache_dir=tmp_path / "wh", warehouse=True
        )
        assert columnar.records == jsonl.records
        assert (columnar.executed, columnar.cached) == (8, 0)

    def test_second_run_is_all_cache_hits(self, tmp_path):
        spec = small_spec()
        first = run_sweep(spec, workers=2, cache_dir=tmp_path, warehouse=True)
        second = run_sweep(spec, workers=2, cache_dir=tmp_path, warehouse=True)
        assert (second.executed, second.cached) == (0, 8)
        assert second.records == first.records

    def test_stream_summaries_identical_to_jsonl_path(self, tmp_path):
        spec = small_spec()
        jsonl = run_sweep(spec, workers=2, stream=True)
        columnar = run_sweep(
            spec, workers=2, cache_dir=tmp_path, warehouse=True, stream=True
        )
        assert (
            columnar.summary_table().render() == jsonl.summary_table().render()
        )

    def test_stream_resume_from_warehouse(self, tmp_path):
        spec = small_spec()
        oracle = run_sweep(spec, workers=1, stream=True)
        run_sweep(spec, workers=1, cache_dir=tmp_path, warehouse=True)
        resumed = run_sweep(
            spec, workers=1, cache_dir=tmp_path, warehouse=True, stream=True
        )
        assert resumed.cached == 8 and resumed.executed == 0
        assert resumed.summary_table().rows == oracle.summary_table().rows

    def test_warehouse_is_reportable(self, tmp_path):
        from repro.experiments.report import summarize_jsonl, summarize_warehouse

        spec = small_spec()
        result = run_sweep(spec, workers=1, cache_dir=tmp_path, warehouse=True)
        export = write_records_jsonl(result.records, tmp_path / "export.jsonl")
        warehouse_dir = tmp_path / f"{spec.spec_hash()}.wh"
        assert (
            summarize_warehouse(warehouse_dir, title="X").render()
            == summarize_jsonl(export, title="X").render()
        )
