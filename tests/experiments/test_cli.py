"""Tests for the CLI."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.experiments.workloads import EXPERIMENTS


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for key in EXPERIMENTS:
            assert key in out

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "NOPE"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_quick_experiment(self, capsys, tmp_path):
        assert main(["run", "SAMPLE-ACC", "--save", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "SAMPLE-ACC" in out
        assert list(tmp_path.glob("sample-acc-*.md"))

    def test_describe(self, capsys):
        assert main(["describe", "LB-DET", "T1-SCALING"]) == 0
        out = capsys.readouterr().out
        assert "Theorem 6" in out
        assert "Theorem 1" in out

    def test_describe_unknown(self, capsys):
        assert main(["describe", "NOPE"]) == 2

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_help_epilog_lists_commands(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        out = capsys.readouterr().out
        for command in ("list", "describe", "run", "run-all", "sweep"):
            assert command in out


class TestSweepCommand:
    _grid = [
        "sweep", "--name", "cli-test", "--family", "complete", "--n", "32",
        "--algorithm", "trivial", "--seeds", "3",
    ]

    def test_smoke_and_out_file(self, capsys, tmp_path):
        out_file = tmp_path / "records.jsonl"
        assert main([*self._grid, "--workers", "1", "--out", str(out_file)]) == 0
        assert "cli-test" in capsys.readouterr().out
        assert len(out_file.read_text().splitlines()) == 3

    def test_workers_do_not_change_output(self, capsys, tmp_path):
        serial_out = tmp_path / "serial.jsonl"
        fanned_out = tmp_path / "fanned.jsonl"
        assert main([*self._grid, "--workers", "1", "--out", str(serial_out)]) == 0
        assert main([*self._grid, "--workers", "2", "--out", str(fanned_out)]) == 0
        assert serial_out.read_bytes() == fanned_out.read_bytes()

    def test_cache_dir_resume(self, capsys, tmp_path):
        cache = tmp_path / "cache"
        args = [*self._grid, "--workers", "1", "--cache-dir", str(cache)]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        assert "3 served from cache" in capsys.readouterr().out

    def test_bad_spec_rejected(self, capsys):
        assert main(["sweep", "--family", "nope"]) == 2
        assert "bad sweep spec" in capsys.readouterr().err

    def test_generator_rejection_is_a_clean_error(self, capsys):
        # Valid spec syntax, but regular graphs need n * delta even —
        # the run-time failure must not escape as a traceback.
        args = [
            "sweep", "--family", "regular", "--n", "21", "--delta", "9",
            "--seeds", "1", "--workers", "1",
        ]
        assert main(args) == 1
        assert "sweep failed" in capsys.readouterr().err

    def test_stream_mode_prints_summary(self, capsys):
        assert main([*self._grid, "--workers", "2", "--stream"]) == 0
        out = capsys.readouterr().out
        assert "cli-test" in out
        assert "streaming: peak" in out

    def test_stream_rejects_out_file(self, capsys, tmp_path):
        args = [*self._grid, "--stream", "--out", str(tmp_path / "x.jsonl")]
        assert main(args) == 2
        assert "--stream" in capsys.readouterr().err

    def test_no_fabric_output_identical(self, capsys, tmp_path):
        fabric_out = tmp_path / "fabric.jsonl"
        legacy_out = tmp_path / "legacy.jsonl"
        assert main([*self._grid, "--workers", "2", "--out", str(fabric_out)]) == 0
        assert main([
            *self._grid, "--workers", "2", "--no-fabric", "--out", str(legacy_out),
        ]) == 0
        assert fabric_out.read_bytes() == legacy_out.read_bytes()


class TestReportCommand:
    def test_report_streams_a_summary(self, capsys, tmp_path):
        out_file = tmp_path / "records.jsonl"
        assert main([
            "sweep", "--name", "report-test", "--family", "complete", "--n", "32",
            "--algorithm", "trivial", "--seeds", "3", "--workers", "1",
            "--out", str(out_file),
        ]) == 0
        capsys.readouterr()
        assert main(["report", str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "RECORDS records.jsonl" in out
        assert "trivial" in out
        assert "3 records in 1 group(s)" in out

    def test_report_missing_file(self, capsys, tmp_path):
        assert main(["report", str(tmp_path / "absent.jsonl")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_report_malformed_file_is_a_clean_error(self, capsys, tmp_path):
        garbage = tmp_path / "garbage.jsonl"
        garbage.write_text('{"not": "a record"}\nnot json at all\n')
        assert main(["report", str(garbage)]) == 2
        assert "cannot read" in capsys.readouterr().err


class TestProfileSetupFlag:
    def test_profile_setup_prints_breakdown(self, capsys):
        assert main([
            "sweep", "--name", "profile-test", "--family", "complete",
            "--n", "32", "--algorithm", "trivial", "--seeds", "2",
            "--workers", "1", "--profile-setup",
        ]) == 0
        out = capsys.readouterr().out
        assert "SETUP PROFILE profile-test" in out
        for column in ("generate", "label", "compile", "export", "trial"):
            assert column in out

    def test_no_profile_by_default(self, capsys):
        assert main([
            "sweep", "--name", "plain", "--family", "complete", "--n", "32",
            "--algorithm", "trivial", "--seeds", "2", "--workers", "1",
        ]) == 0
        assert "SETUP PROFILE" not in capsys.readouterr().out


class TestWarehouseCli:
    _grid = [
        "sweep", "--name", "wh-test", "--family", "complete", "--n", "32",
        "--algorithm", "trivial", "--seeds", "3", "--workers", "1",
    ]

    def _warehouse_dir(self, cache_dir):
        dirs = [p for p in cache_dir.iterdir() if p.suffix == ".wh"]
        assert len(dirs) == 1
        return dirs[0]

    def test_sweep_warehouse_requires_cache_dir(self, capsys):
        assert main([*self._grid, "--warehouse"]) == 2
        assert "--cache-dir" in capsys.readouterr().err

    def test_sweep_warehouse_then_report(self, capsys, tmp_path):
        cache = tmp_path / "cache"
        assert main([*self._grid, "--cache-dir", str(cache), "--warehouse"]) == 0
        capsys.readouterr()
        warehouse = self._warehouse_dir(cache)
        assert main(["report", str(warehouse)]) == 0
        out = capsys.readouterr().out
        assert "trivial" in out
        assert "3 records in 1 group(s)" in out

    def test_warehouse_report_matches_jsonl_report(self, capsys, tmp_path):
        cache = tmp_path / "cache"
        out_file = tmp_path / "records.jsonl"
        assert main([
            *self._grid, "--cache-dir", str(cache), "--warehouse",
        ]) == 0
        assert main([*self._grid, "--out", str(out_file)]) == 0
        capsys.readouterr()
        assert main(["report", str(out_file)]) == 0
        jsonl_out = capsys.readouterr().out
        assert main(["report", str(self._warehouse_dir(cache))]) == 0
        warehouse_out = capsys.readouterr().out
        # Same table modulo the title line, which names the source.
        strip = lambda text: text.splitlines()[1:]
        assert strip(jsonl_out) == strip(warehouse_out)

    def test_sweep_warehouse_resume(self, capsys, tmp_path):
        cache = tmp_path / "cache"
        args = [*self._grid, "--cache-dir", str(cache), "--warehouse"]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        assert "3 served from cache" in capsys.readouterr().out

    def test_report_empty_file(self, capsys, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.touch()
        assert main(["report", str(empty)]) == 2
        err = capsys.readouterr().err
        assert "cannot read" in err and "empty" in err

    def test_report_non_warehouse_dir(self, capsys, tmp_path):
        assert main(["report", str(tmp_path)]) == 2
        err = capsys.readouterr().err
        assert "cannot read" in err and "manifest.json" in err
