"""Tests for the CLI."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.experiments.workloads import EXPERIMENTS


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for key in EXPERIMENTS:
            assert key in out

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "NOPE"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_quick_experiment(self, capsys, tmp_path):
        assert main(["run", "SAMPLE-ACC", "--save", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "SAMPLE-ACC" in out
        assert list(tmp_path.glob("sample-acc-*.md"))

    def test_describe(self, capsys):
        assert main(["describe", "LB-DET", "T1-SCALING"]) == 0
        out = capsys.readouterr().out
        assert "Theorem 6" in out
        assert "Theorem 1" in out

    def test_describe_unknown(self, capsys):
        assert main(["describe", "NOPE"]) == 2

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
