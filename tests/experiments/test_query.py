"""Tests for the lazy query layer and its fused columnar kernel."""

from __future__ import annotations

import random
import statistics

import pytest

from repro.errors import QueryError, WarehouseError
from repro.experiments import query
from repro.experiments.harness import TrialRecord, repeat_trials, run_trial
from repro.experiments.query import col, from_records, lit, scan
from repro.experiments.results_io import record_to_jsonable, write_records_jsonl
from repro.experiments.warehouse import write_records_warehouse
from repro.graphs.generators import complete_graph, random_graph_with_min_degree


def mixed_records():
    """Records across two algorithms × two graphs, some unmet."""
    records = []
    graphs = [complete_graph(16), random_graph_with_min_degree(40, 10,
                                                              random.Random(7))]
    for graph in graphs:
        for algorithm in ("trivial", "random-walk"):
            records.extend(
                repeat_trials(graph, algorithm, range(3), max_rounds=60)
            )
    return records


def mutate(record: TrialRecord, **overrides) -> TrialRecord:
    return TrialRecord(**{**record_to_jsonable(record), **overrides})


@pytest.fixture(scope="module")
def records():
    return mixed_records()


@pytest.fixture()
def warehouse(records, tmp_path):
    return write_records_warehouse(records, tmp_path / "wh")


class TestExpressions:
    def test_comparisons_and_alias(self, records):
        frame = (
            from_records(records)
            .filter(col("algorithm") == "trivial")
            .select(col("rounds"), (col("rounds") * lit(2)).alias("double"))
            .collect()
        )
        assert frame.column_names == ["rounds", "double"]
        for row in frame.iter_rows():
            assert row["double"] == row["rounds"] * 2

    def test_is_in_and_boolean_ops(self, records):
        frame = (
            from_records(records)
            .filter(col("algorithm").is_in(["trivial"]) & col("met"))
            .select(col("algorithm"), col("met"))
            .collect()
        )
        assert all(row["algorithm"] == "trivial" for row in frame.iter_rows())
        assert all(row["met"] for row in frame.iter_rows())

    def test_unnamed_select_rejected(self, records):
        with pytest.raises(QueryError):
            from_records(records).select(col("n") + lit(1))

    def test_unknown_column_rejected(self, records):
        with pytest.raises(QueryError):
            from_records(records).select(col("nope")).collect()

    def test_point_column_needs_a_warehouse(self, records):
        with pytest.raises(QueryError):
            from_records(records).select(col("_point")).collect()


class TestGroupBy:
    def test_matches_manual_fold(self, records):
        frame = (
            from_records(records)
            .group_by("algorithm")
            .agg(
                total=query.count(),
                met=query.sum_("met"),
                mean_rounds=query.mean("rounds", where=col("met")),
            )
            .collect()
        )
        by_alg = {row["algorithm"]: row for row in frame.iter_rows()}
        for algorithm in ("trivial", "random-walk"):
            mine = [r for r in records if r.algorithm == algorithm]
            met_rounds = [r.rounds for r in mine if r.met]
            assert by_alg[algorithm]["total"] == len(mine)
            assert by_alg[algorithm]["met"] == sum(r.met for r in mine)
            expected = statistics.fmean(met_rounds) if met_rounds else None
            assert by_alg[algorithm]["mean_rounds"] == expected

    def test_sketch_matches_partial_summary(self, records):
        from repro.analysis.stats import PartialSummary

        frame = (
            from_records(records)
            .group_by("algorithm")
            .agg(sk=query.sketch("rounds"))
            .collect()
        )
        for row in frame.iter_rows():
            values = [r.rounds for r in records if r.algorithm == row["algorithm"]]
            assert row["sk"] == PartialSummary.of(values)

    def test_key_collision_rejected(self, records):
        with pytest.raises(QueryError):
            (
                from_records(records)
                .group_by("algorithm")
                .agg(algorithm=query.count())
                .collect()
            )

    def test_agg_requires_agg_objects(self, records):
        with pytest.raises(QueryError):
            from_records(records).group_by("algorithm").agg(x=col("rounds"))


class TestFusedKernel:
    def test_plan_description(self, warehouse, records):
        fused = scan(warehouse).group_by("algorithm").agg(total=query.count())
        assert "fused single pass" in fused.describe_plan()
        rowwise = (
            scan(warehouse)
            .filter(col("met"))
            .group_by("algorithm")
            .agg(total=query.count())
        )
        assert "row-wise fold" in rowwise.describe_plan()
        assert "row-wise fold" in (
            from_records(records).group_by("algorithm")
            .agg(total=query.count()).describe_plan()
        )

    def test_fused_equals_rowwise_oracle(self, warehouse, records):
        aggs = dict(
            total=query.count(),
            met=query.sum_("met"),
            best=query.min_("rounds", where=col("met")),
            worst=query.max_("rounds"),
            moves=query.sum_("total_moves"),
            rounds=query.values("rounds", where=col("met")),
            median_rounds=query.median("rounds"),
        )
        keys = ("algorithm", "graph_name", "n", "delta")
        fused = scan(warehouse).group_by(*keys).agg(**aggs)
        assert "fused single pass" in fused.describe_plan()
        oracle = from_records(records).group_by(*keys).agg(**aggs)
        assert list(fused.collect().sort_by(*keys).iter_rows()) == list(
            oracle.collect().sort_by(*keys).iter_rows()
        )

    def test_fused_with_fallback_rows(self, records, tmp_path):
        """Fallback rows (overflow + pickled reports) splice in exactly."""
        patched = list(records)
        patched[1] = mutate(patched[1], total_moves=2 ** 70)
        patched[5] = mutate(patched[5], reports={"a": {"pair": (1, 2)}})
        path = write_records_warehouse(patched, tmp_path / "fb")
        aggs = dict(moves=query.sum_("total_moves"), total=query.count())
        fused = scan(path).group_by("algorithm").agg(**aggs)
        assert "fused single pass" in fused.describe_plan()
        oracle = from_records(patched).group_by("algorithm").agg(**aggs)
        assert list(fused.collect().sort_by("algorithm").iter_rows()) == list(
            oracle.collect().sort_by("algorithm").iter_rows()
        )

    def test_floordiv_key_fuses(self, records, tmp_path):
        path = write_records_warehouse(records, tmp_path / "wh2")
        plan = (
            scan(path)
            .group_by((col("seed") // 2).alias("pair"))
            .agg(total=query.count())
        )
        assert "fused single pass" in plan.describe_plan()
        frame = plan.collect()
        expected: dict[int, int] = {}
        for record in records:
            expected[record.seed // 2] = expected.get(record.seed // 2, 0) + 1
        assert {
            row["pair"]: row["total"] for row in frame.iter_rows()
        } == expected

    def test_select_fused_matches_records(self, warehouse, records):
        frame = scan(warehouse).select(col("rounds"), col("algorithm")).collect()
        assert list(frame.column("rounds")) == [r.rounds for r in records]
        assert list(frame.column("algorithm")) == [r.algorithm for r in records]

    def test_select_unknown_column_matches_rowwise_error(self, warehouse):
        # Same exception type as the row-wise executor (_record_get),
        # so callers do not depend on which executor happens to run.
        with pytest.raises(QueryError, match="no such column"):
            scan(warehouse).select(col("nope")).collect()
        with pytest.raises(QueryError, match="_point"):
            scan(warehouse).select(col("_point")).collect()


class TestScan:
    def test_scan_jsonl(self, records, tmp_path):
        path = write_records_jsonl(records, tmp_path / "r.jsonl")
        frame = (
            scan(path).group_by("algorithm").agg(total=query.count()).collect()
        )
        assert sum(row["total"] for row in frame.iter_rows()) == len(records)

    def test_scan_missing_path(self, tmp_path):
        with pytest.raises(WarehouseError):
            scan(tmp_path / "missing")

    def test_scan_non_warehouse_dir(self, tmp_path):
        with pytest.raises(WarehouseError):
            scan(tmp_path)

    def test_scan_accepts_open_warehouse(self, warehouse, records):
        from repro.experiments.warehouse import SweepWarehouse

        frame = (
            scan(SweepWarehouse(warehouse))
            .group_by("algorithm")
            .agg(total=query.count())
            .collect()
        )
        assert sum(row["total"] for row in frame.iter_rows()) == len(records)


class TestFrame:
    def test_sort_and_len(self, records):
        frame = (
            from_records(records)
            .group_by("algorithm", "n")
            .agg(total=query.count())
            .collect()
        )
        ordered = frame.sort_by("n", "algorithm")
        keys = [(row["n"], row["algorithm"]) for row in ordered.iter_rows()]
        assert keys == sorted(keys)
        assert len(ordered) == len(frame)

    def test_drop(self, records):
        frame = (
            from_records(records)
            .group_by("algorithm")
            .agg(total=query.count(), extra=query.count())
            .collect()
        )
        assert "extra" not in frame.drop("extra").column_names
