"""Tests for raw-record persistence and the columnar batch codec."""

from __future__ import annotations

import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.api import ALGORITHMS
from repro.experiments.harness import TrialRecord, repeat_trials, run_trial
from repro.experiments.results_io import (
    iter_records_jsonl,
    pack_record_batch,
    read_records_jsonl,
    record_to_jsonable,
    unpack_record_batch,
    write_records_csv,
    write_records_jsonl,
)
from repro.graphs.generators import complete_graph, random_graph_with_min_degree
from repro.graphs.ports import PortLabeling, PortModel


def sample_records():
    return repeat_trials(complete_graph(20), "trivial", range(3))


class TestJsonl:
    def test_round_trip(self, tmp_path):
        records = sample_records()
        path = write_records_jsonl(records, tmp_path / "out.jsonl")
        loaded = read_records_jsonl(path)
        assert len(loaded) == 3
        for original, restored in zip(records, loaded):
            assert restored.algorithm == original.algorithm
            assert restored.rounds == original.rounds
            assert restored.seed == original.seed
            assert restored.met == original.met

    def test_reports_survive(self, tmp_path):
        records = sample_records()
        path = write_records_jsonl(records, tmp_path / "out.jsonl")
        loaded = read_records_jsonl(path)
        assert loaded[0].reports["a"]["probes"] == records[0].reports["a"]["probes"]

    def test_lines_are_valid_json(self, tmp_path):
        path = write_records_jsonl(sample_records(), tmp_path / "out.jsonl")
        for line in path.read_text().splitlines():
            json.loads(line)

    def test_blank_lines_skipped(self, tmp_path):
        path = write_records_jsonl(sample_records(), tmp_path / "out.jsonl")
        path.write_text(path.read_text() + "\n\n")
        assert len(read_records_jsonl(path)) == 3

    def test_nonjson_report_values_stringified(self, tmp_path):
        from repro.experiments.harness import TrialRecord

        record = TrialRecord(
            algorithm="x", graph_name="g", n=2, id_space=2, delta=1,
            max_degree=1, seed=0, met=True, rounds=1, total_moves=0,
            whiteboard_writes=0,
            reports={"a": {"odd": frozenset({3, 1}), "obj": object()}},
        )
        path = write_records_jsonl([record], tmp_path / "odd.jsonl")
        loaded = read_records_jsonl(path)
        assert loaded[0].reports["a"]["odd"] == [1, 3]
        assert isinstance(loaded[0].reports["a"]["obj"], str)


class TestIterRecords:
    def test_streaming_matches_bulk_load(self, tmp_path):
        records = sample_records()
        path = write_records_jsonl(records, tmp_path / "out.jsonl")
        assert list(iter_records_jsonl(path)) == read_records_jsonl(path)

    def test_is_lazy(self, tmp_path):
        path = write_records_jsonl(sample_records(), tmp_path / "out.jsonl")
        stream = iter_records_jsonl(path)
        first = next(stream)
        assert first.algorithm == "trivial"
        stream.close()  # no exhaustion required

    def test_blank_lines_skipped(self, tmp_path):
        path = write_records_jsonl(sample_records(), tmp_path / "out.jsonl")
        path.write_text("\n" + path.read_text() + "\n\n")
        assert len(list(iter_records_jsonl(path))) == 3


def _export_bytes(records) -> bytes:
    return "\n".join(
        json.dumps(record_to_jsonable(r), sort_keys=True) for r in records
    ).encode()


def _supported_matrix():
    pairs = [(algorithm, PortModel.KT1) for algorithm in ALGORITHMS]
    pairs.append(("random-walk", PortModel.KT0))  # the only KT0-capable one
    return pairs


class TestRecordBatchCodec:
    @pytest.mark.parametrize(
        "algorithm,port_model",
        _supported_matrix(),
        ids=lambda value: getattr(value, "value", value),
    )
    def test_round_trip_byte_identical_per_algorithm(self, algorithm, port_model):
        """Acceptance: codec exactness for every algorithm × port model."""
        graph = random_graph_with_min_degree(40, 10, random.Random("codec"))
        labeling = (
            PortLabeling(graph, rng=random.Random(2))
            if port_model is PortModel.KT0
            else None
        )
        records = [
            run_trial(
                graph, algorithm, seed,
                port_model=port_model, labeling=labeling, max_rounds=400,
            )
            for seed in range(3)
        ]
        restored = unpack_record_batch(pack_record_batch(records))
        assert _export_bytes(restored) == _export_bytes(records)
        # KT1 reports are JSON-native, so the records themselves (not
        # just their exports) must survive the wire exactly.
        assert restored == records

    def test_empty_batch(self):
        assert unpack_record_batch(pack_record_batch([])) == []

    def test_json_native_detects_lossless_reports(self):
        from repro.experiments.results_io import json_native

        assert json_native({"a": {"moves": 3, "ok": True, "note": None}})
        assert json_native({"a": {"path": [1, 2, 3], "rate": 0.5}})
        # Values record_to_jsonable would *coerce* are not native: the
        # fabric must ship such records as objects, not columns.
        assert not json_native({"a": {"pair": (1, 2)}})
        assert not json_native({"a": {"seen": frozenset({1})}})
        assert not json_native({"a": {"obj": object()}})
        assert not json_native({1: {"non-str": "key"}})

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError):
            unpack_record_batch(b"NOPE" + b"\x00" * 16)

    def test_int64_overflow_raises(self):
        record = sample_records()[0]
        huge = TrialRecord(**{**record_to_jsonable(record), "rounds": 2 ** 70})
        with pytest.raises(OverflowError):
            pack_record_batch([huge])

    @settings(max_examples=25, deadline=None)
    @given(
        records=st.lists(
            st.builds(
                TrialRecord,
                algorithm=st.text(max_size=8),
                graph_name=st.text(max_size=12),
                n=st.integers(min_value=1, max_value=2 ** 62),
                id_space=st.integers(min_value=1, max_value=2 ** 62),
                delta=st.integers(min_value=-(2 ** 62), max_value=2 ** 62),
                max_degree=st.integers(min_value=0, max_value=2 ** 62),
                seed=st.integers(min_value=-(2 ** 62), max_value=2 ** 62),
                met=st.booleans(),
                rounds=st.integers(min_value=0, max_value=2 ** 62),
                total_moves=st.integers(min_value=0, max_value=2 ** 62),
                whiteboard_writes=st.integers(min_value=0, max_value=2 ** 62),
                reports=st.dictionaries(
                    st.text(max_size=6),
                    st.dictionaries(
                        st.text(max_size=6),
                        st.one_of(
                            st.integers(min_value=-(2 ** 31), max_value=2 ** 31),
                            st.text(max_size=10),
                            st.booleans(),
                            st.none(),
                            st.lists(st.integers(), max_size=3),
                        ),
                        max_size=3,
                    ),
                    max_size=2,
                ),
            ),
            max_size=6,
        )
    )
    def test_round_trip_property(self, records):
        """Any JSON-native record list survives the wire byte-for-byte."""
        restored = unpack_record_batch(pack_record_batch(records))
        assert _export_bytes(restored) == _export_bytes(records)


class TestCsv:
    def test_header_and_rows(self, tmp_path):
        path = write_records_csv(sample_records(), tmp_path / "out.csv")
        lines = path.read_text().strip().splitlines()
        assert lines[0].startswith("algorithm,")
        assert len(lines) == 4

    def test_directories_created(self, tmp_path):
        path = write_records_csv(sample_records(), tmp_path / "a" / "b" / "o.csv")
        assert path.exists()


class TestTornTrailingLine:
    """Crash-resume: a torn final line is a warning, not a crash."""

    def _torn(self, tmp_path, tail: str):
        records = sample_records()
        path = write_records_jsonl(records, tmp_path / "out.jsonl")
        with path.open("a", encoding="utf-8") as handle:
            handle.write(tail)
        return records, path

    def test_truncated_final_line_warns_and_yields_prefix(self, tmp_path):
        records, path = self._torn(tmp_path, '{"algorithm": "triv')
        with pytest.warns(UserWarning, match="truncated final line"):
            assert list(iter_records_jsonl(path)) == records

    def test_half_written_record_payload(self, tmp_path):
        # A syntactically valid JSON line that is not a full record
        # (interrupted mid-buffer flush) is also recoverable at EOF.
        records, path = self._torn(tmp_path, '{"algorithm": "trivial"}\n')
        with pytest.warns(UserWarning, match="truncated final line"):
            assert list(iter_records_jsonl(path)) == records

    def test_trailing_blank_lines_do_not_mask_recovery(self, tmp_path):
        records, path = self._torn(tmp_path, '{"torn\n\n\n')
        with pytest.warns(UserWarning):
            assert list(iter_records_jsonl(path)) == records

    def test_mid_file_corruption_still_raises(self, tmp_path):
        records = sample_records()
        path = write_records_jsonl(records[:2], tmp_path / "out.jsonl")
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"torn\n')
        write_records_jsonl(records[2:], path.with_suffix(".rest"))
        with path.open("a", encoding="utf-8") as handle:
            handle.write(path.with_suffix(".rest").read_text())
        with pytest.raises(ValueError):
            list(iter_records_jsonl(path))

    def test_clean_file_does_not_warn(self, tmp_path):
        import warnings

        records = sample_records()
        path = write_records_jsonl(records, tmp_path / "out.jsonl")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert list(iter_records_jsonl(path)) == records
