"""Tests for raw-record persistence."""

from __future__ import annotations

import json

from repro.experiments.harness import repeat_trials
from repro.experiments.results_io import (
    read_records_jsonl,
    write_records_csv,
    write_records_jsonl,
)
from repro.graphs.generators import complete_graph


def sample_records():
    return repeat_trials(complete_graph(20), "trivial", range(3))


class TestJsonl:
    def test_round_trip(self, tmp_path):
        records = sample_records()
        path = write_records_jsonl(records, tmp_path / "out.jsonl")
        loaded = read_records_jsonl(path)
        assert len(loaded) == 3
        for original, restored in zip(records, loaded):
            assert restored.algorithm == original.algorithm
            assert restored.rounds == original.rounds
            assert restored.seed == original.seed
            assert restored.met == original.met

    def test_reports_survive(self, tmp_path):
        records = sample_records()
        path = write_records_jsonl(records, tmp_path / "out.jsonl")
        loaded = read_records_jsonl(path)
        assert loaded[0].reports["a"]["probes"] == records[0].reports["a"]["probes"]

    def test_lines_are_valid_json(self, tmp_path):
        path = write_records_jsonl(sample_records(), tmp_path / "out.jsonl")
        for line in path.read_text().splitlines():
            json.loads(line)

    def test_blank_lines_skipped(self, tmp_path):
        path = write_records_jsonl(sample_records(), tmp_path / "out.jsonl")
        path.write_text(path.read_text() + "\n\n")
        assert len(read_records_jsonl(path)) == 3

    def test_nonjson_report_values_stringified(self, tmp_path):
        from repro.experiments.harness import TrialRecord

        record = TrialRecord(
            algorithm="x", graph_name="g", n=2, id_space=2, delta=1,
            max_degree=1, seed=0, met=True, rounds=1, total_moves=0,
            whiteboard_writes=0,
            reports={"a": {"odd": frozenset({3, 1}), "obj": object()}},
        )
        path = write_records_jsonl([record], tmp_path / "odd.jsonl")
        loaded = read_records_jsonl(path)
        assert loaded[0].reports["a"]["odd"] == [1, 3]
        assert isinstance(loaded[0].reports["a"]["obj"], str)


class TestCsv:
    def test_header_and_rows(self, tmp_path):
        path = write_records_csv(sample_records(), tmp_path / "out.csv")
        lines = path.read_text().strip().splitlines()
        assert lines[0].startswith("algorithm,")
        assert len(lines) == 4

    def test_directories_created(self, tmp_path):
        path = write_records_csv(sample_records(), tmp_path / "a" / "b" / "o.csv")
        assert path.exists()
