"""Tests for the columnar results warehouse (storage layer)."""

from __future__ import annotations

import json
import random

import pytest

from repro.errors import WarehouseError
from repro.experiments.harness import TrialRecord, repeat_trials, run_trial
from repro.experiments.results_io import record_to_jsonable
from repro.experiments.warehouse import (
    MANIFEST_NAME,
    SweepWarehouse,
    WarehouseCache,
    WarehouseWriter,
    is_warehouse,
    write_records_warehouse,
)
from repro.graphs.generators import complete_graph, random_graph_with_min_degree


def sample_records():
    return repeat_trials(complete_graph(20), "trivial", range(4))


def scenario_records():
    graph = random_graph_with_min_degree(40, 10, random.Random("wh"))
    records = []
    for name in ("none", "wb-corrupt", "crash-restart"):
        for seed in range(2):
            records.append(
                run_trial(graph, "theorem1", seed, scenario=name, max_rounds=50_000)
            )
    return records


def mutate(record: TrialRecord, **overrides) -> TrialRecord:
    return TrialRecord(**{**record_to_jsonable(record), **overrides})


class TestRoundTrip:
    def test_exact_record_round_trip(self, tmp_path):
        records = sample_records()
        path = write_records_warehouse(records, tmp_path / "wh")
        assert is_warehouse(path)
        assert list(SweepWarehouse(path).iter_records()) == records

    def test_scenario_side_channel_round_trips(self, tmp_path):
        """Satellite: scenario present (str) and absent (None) both survive."""
        records = scenario_records()
        assert {r.scenario for r in records} == {None, "wb-corrupt", "crash-restart"}
        path = write_records_warehouse(records, tmp_path / "wh")
        restored = list(SweepWarehouse(path).iter_records())
        assert [r.scenario for r in restored] == [r.scenario for r in records]
        assert restored == records

    def test_int64_overflow_falls_back_to_side_channel(self, tmp_path):
        """Satellite: a record the columns cannot hold round-trips exactly."""
        records = sample_records()
        records[1] = mutate(records[1], total_moves=2 ** 70, met=True)
        path = write_records_warehouse(records, tmp_path / "wh")
        warehouse = SweepWarehouse(path)
        assert warehouse.fallback_rows == (1,)
        restored = list(warehouse.iter_records())
        assert restored == records
        assert restored[1].total_moves == 2 ** 70

    def test_non_json_native_reports_fall_back(self, tmp_path):
        """Satellite: tuple-valued reports survive via the pickle channel."""
        records = sample_records()
        records[2] = mutate(records[2], reports={"a": {"pair": (1, 2)}})
        path = write_records_warehouse(records, tmp_path / "wh")
        restored = list(SweepWarehouse(path).iter_records())
        assert restored == records
        assert restored[2].reports["a"]["pair"] == (1, 2)  # tuple, not list

    def test_pack_persist_scan_object_identity(self, tmp_path):
        """Satellite: pack → persist → scan returns equal record objects."""
        from repro.experiments.results_io import (
            pack_record_batch,
            unpack_record_batch,
        )

        records = scenario_records()
        shipped = unpack_record_batch(pack_record_batch(records))
        path = write_records_warehouse(shipped, tmp_path / "wh")
        assert list(SweepWarehouse(path).iter_records()) == records

    def test_column_access(self, tmp_path):
        records = sample_records()
        path = write_records_warehouse(records, tmp_path / "wh")
        warehouse = SweepWarehouse(path)
        assert len(warehouse) == len(records)
        assert list(warehouse.column("rounds")) == [r.rounds for r in records]
        assert bytes(warehouse.column("met")) == bytes(
            1 if r.met else 0 for r in records
        )
        algs = warehouse.dictionary("algorithm")
        assert [algs[c] for c in warehouse.column("algorithm")] == [
            r.algorithm for r in records
        ]

    def test_spec_payload_persisted(self, tmp_path):
        payload = {"name": "spec", "ns": [40]}
        path = write_records_warehouse(
            sample_records(), tmp_path / "wh", spec_payload=payload
        )
        assert SweepWarehouse(path).spec == payload


class TestDictionaryEscalation:
    def test_more_than_256_values_round_trip(self, tmp_path):
        base = sample_records()[0]
        records = [mutate(base, graph_name=f"g{i:04d}", seed=i) for i in range(300)]
        with WarehouseWriter(tmp_path / "wh") as writer:
            writer.append_batch(records[:100])
            writer.append_batch(records[100:])
            writer.commit()
        assert list(SweepWarehouse(tmp_path / "wh").iter_records()) == records
        # The widened codes live under the u16 file name; the narrow
        # segment is gone once the manifest committed the new width.
        assert (tmp_path / "wh" / "graph_name.H.seg").exists()
        assert not (tmp_path / "wh" / "graph_name.B.seg").exists()

    def test_crash_during_escalation_preserves_committed_rows(
        self, tmp_path, monkeypatch
    ):
        """A crash between widening and the manifest commit loses only
        the in-flight batch — never previously committed rows."""
        base = sample_records()[0]
        records = [mutate(base, graph_name=f"g{i:04d}", seed=i) for i in range(300)]
        path = tmp_path / "wh"
        with WarehouseWriter(path) as writer:
            writer.append_batch(records[:200])

        writer = WarehouseWriter(path)
        monkeypatch.setattr(
            writer,
            "_write_manifest",
            lambda: (_ for _ in ()).throw(RuntimeError("simulated crash")),
        )
        with pytest.raises(RuntimeError):
            writer.append_batch(records[200:])  # escalates u8 -> u16
        writer.close()

        # Even before recovery runs, the manifest references the intact
        # narrow segment, so readers see the committed rows unharmed.
        assert list(SweepWarehouse(path).iter_records()) == records[:200]
        with WarehouseWriter(path) as resumed:
            assert resumed.rows == 200
            # Recovery discarded the half-written wide file.
            assert not (path / "graph_name.H.seg").exists()
            resumed.append_batch(records[200:])
        assert list(SweepWarehouse(path).iter_records()) == records


class TestCrashRecovery:
    def test_truncates_uncommitted_tail(self, tmp_path):
        records = sample_records()
        path = write_records_warehouse(records[:3], tmp_path / "wh")
        # Simulate a crash mid-append: bytes past the manifest's commit
        # point land in some segments but the manifest was never updated.
        for name in ("rounds.seg", "met.seg"):
            with open(path / name, "ab") as handle:
                handle.write(b"\xff" * 11)
        with open(path / "fallback.jsonl", "ab") as handle:
            handle.write(b'{"torn')
        with WarehouseWriter(path) as writer:
            assert writer.rows == 3
            writer.append_batch(records[3:])
            writer.commit()
        assert list(SweepWarehouse(path).iter_records()) == records

    def test_corrupt_fallback_midfile_is_an_error(self, tmp_path):
        """Only the torn tail may be dropped; earlier damage raises."""
        records = sample_records()
        records[1] = mutate(records[1], total_moves=2 ** 70, met=True)
        records[3] = mutate(records[3], total_moves=2 ** 71, met=True)
        path = write_records_warehouse(records, tmp_path / "wh")
        lines = (path / "fallback.jsonl").read_text().splitlines()
        assert len(lines) == 2
        (path / "fallback.jsonl").write_text(f"{{corrupt\n{lines[1]}\n")
        with pytest.raises(WarehouseError, match="unparsable"):
            WarehouseWriter(path)

    def test_missing_committed_fallback_payload_is_an_error(self, tmp_path):
        records = sample_records()
        records[1] = mutate(records[1], total_moves=2 ** 70, met=True)
        path = write_records_warehouse(records, tmp_path / "wh")
        (path / "fallback.jsonl").write_text("")
        with pytest.raises(WarehouseError, match="missing"):
            WarehouseWriter(path)

    def test_shrunk_segment_is_an_error(self, tmp_path):
        path = write_records_warehouse(sample_records(), tmp_path / "wh")
        with open(path / "rounds.seg", "r+b") as handle:
            handle.truncate(8)
        with pytest.raises(WarehouseError):
            WarehouseWriter(path)

    def test_resume_false_wipes(self, tmp_path):
        records = sample_records()
        path = write_records_warehouse(records, tmp_path / "wh")
        with WarehouseWriter(path, resume=False) as writer:
            assert writer.rows == 0
            writer.append_batch(records[:2])
            writer.commit()
        assert list(SweepWarehouse(path).iter_records()) == records[:2]

    def test_content_hash_tracks_data(self, tmp_path):
        records = sample_records()
        a = SweepWarehouse(write_records_warehouse(records, tmp_path / "a"))
        b = SweepWarehouse(write_records_warehouse(records, tmp_path / "b"))
        c = SweepWarehouse(write_records_warehouse(records[:3], tmp_path / "c"))
        assert a.content_hash == b.content_hash
        assert a.content_hash != c.content_hash


class TestValidation:
    def test_not_a_warehouse(self, tmp_path):
        with pytest.raises(WarehouseError):
            SweepWarehouse(tmp_path)

    def test_future_version_rejected(self, tmp_path):
        path = write_records_warehouse(sample_records(), tmp_path / "wh")
        manifest = json.loads((path / MANIFEST_NAME).read_text())
        manifest["version"] = 99
        (path / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(WarehouseError, match="newer"):
            SweepWarehouse(path)
        with pytest.raises(WarehouseError, match="newer"):
            WarehouseWriter(path)

    def test_malformed_manifest_rejected(self, tmp_path):
        target = tmp_path / "wh"
        target.mkdir()
        (target / MANIFEST_NAME).write_text("{not json")
        with pytest.raises(WarehouseError):
            SweepWarehouse(target)

    def test_is_warehouse(self, tmp_path):
        assert not is_warehouse(tmp_path)
        assert not is_warehouse(tmp_path / "missing")
        path = write_records_warehouse(sample_records(), tmp_path / "wh")
        assert is_warehouse(path)


class TestWarehouseCache:
    def test_append_and_iter_indexed(self, tmp_path):
        records = sample_records()
        cache = WarehouseCache(tmp_path, "deadbeef")
        cache.append_indexed(list(enumerate(records)))
        cache.close()
        again = WarehouseCache(tmp_path, "deadbeef")
        assert list(again.iter_indexed()) == list(enumerate(records))
        again.close()

    def test_duplicate_indices_first_wins(self, tmp_path):
        records = sample_records()
        cache = WarehouseCache(tmp_path, "deadbeef")
        cache.append_indexed([(0, records[0]), (1, records[1])])
        cache.append_indexed([(1, records[2])])
        pairs = dict(cache.iter_indexed())
        cache.close()
        assert pairs[1] == records[1]

    def test_reset(self, tmp_path):
        records = sample_records()
        cache = WarehouseCache(tmp_path, "deadbeef")
        cache.append_indexed(list(enumerate(records)))
        cache.reset()
        assert list(cache.iter_indexed()) == []
        cache.close()
