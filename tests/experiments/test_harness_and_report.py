"""Tests for the experiment harness and table rendering."""

from __future__ import annotations

import pytest

from repro.errors import GraphError
from repro.experiments.harness import (
    TrialRecord,
    aggregate_rounds,
    repeat_trials,
    run_trial,
)
from repro.experiments.report import Table
from repro.graphs.generators import complete_graph, path_graph


class TestRunTrial:
    def test_record_fields(self):
        g = complete_graph(20)
        record = run_trial(g, "trivial", seed=0)
        assert record.met
        assert record.algorithm == "trivial"
        assert record.n == 20
        assert record.delta == 19
        assert record.rounds > 0
        assert record.rounds_per_n == record.rounds / 20

    def test_instance_check_enforced(self):
        g = path_graph(5)
        with pytest.raises(GraphError):
            run_trial(g, "trivial", seed=0, start_a=0, start_b=3)

    def test_instance_check_can_be_skipped(self):
        g = path_graph(5)
        record = run_trial(
            g, "random-walk", seed=0, start_a=0, start_b=3,
            check_instance=False, max_rounds=100_000,
        )
        assert record.met

    def test_repeat_trials(self):
        g = complete_graph(16)
        records = repeat_trials(g, "trivial", range(4))
        assert len(records) == 4
        assert {r.seed for r in records} == {0, 1, 2, 3}

    def test_aggregate_rounds(self):
        g = complete_graph(16)
        records = repeat_trials(g, "trivial", range(4))
        summary = aggregate_rounds(records)
        assert summary.count == 4
        assert summary.mean > 0

    def test_aggregate_requires_success(self):
        record = TrialRecord(
            algorithm="x", graph_name="g", n=2, id_space=2, delta=1,
            max_degree=1, seed=0, met=False, rounds=10, total_moves=0,
            whiteboard_writes=0,
        )
        with pytest.raises(ValueError):
            aggregate_rounds([record])


class TestTable:
    def test_render_contains_everything(self):
        table = Table("demo", ["a", "b"])
        table.add_row(1, 2.5)
        table.add_row(10_000, "x")
        table.add_note("a note")
        text = table.render()
        assert "demo" in text
        assert "10,000" in text
        assert "2.500" in text
        assert "a note" in text

    def test_row_length_validated(self):
        table = Table("t", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_markdown(self):
        table = Table("t", ["col"])
        table.add_row(True)
        md = table.to_markdown()
        assert "| col |" in md
        assert "| yes |" in md

    def test_save_markdown(self, tmp_path):
        table = Table("t", ["col"])
        table.add_row(3)
        target = table.save_markdown(tmp_path, "out")
        assert target.read_text().startswith("### t")

    def test_empty_table_renders(self):
        assert "t" in Table("t", ["a"]).render()
