"""Benchmark for Sample's classification accuracy (Lemma 2)."""

from __future__ import annotations


def _column(table, name):
    index = table.headers.index(name)
    return [row[index] for row in table.rows]


def test_sample_accuracy(experiment):
    """SAMPLE-ACC: no Lemma 2 errors at testing constants."""
    (table,) = experiment("SAMPLE-ACC")
    assert sum(_column(table, "alpha-light declared heavy")) == 0
    assert sum(_column(table, "4alpha-heavy declared light")) == 0
