"""Benchmark for Main-Rendezvous with an oracle dense set (Lemma 1)."""

from __future__ import annotations


def _column(table, name):
    index = table.headers.index(name)
    return [row[index] for row in table.rows]


def test_main_rendezvous_bound_ratio(experiment):
    """MAIN-RDV: measured rounds stay within a constant of Lemma 1."""
    (table,) = experiment("MAIN-RDV")
    ratios = _column(table, "rounds/bound")
    assert all(r < 40 for r in ratios), f"bound ratios exploded: {ratios}"
    # The ratio should not grow systematically: last within 4x of first.
    assert ratios[-1] < 4 * max(ratios[0], 1.0)
