"""Benchmarks for the gathering and distance-two extensions."""

from __future__ import annotations


def _column(table, name):
    index = table.headers.index(name)
    return [row[index] for row in table.rows]


def test_gathering_extension(experiment):
    """EXT-GATHER: every k gathers; cost grows with k."""
    (table,) = experiment("EXT-GATHER")
    for gathered in _column(table, "gathered"):
        done, total = gathered.split("/")
        assert done == total
    rounds = _column(table, "mean rounds")
    assert rounds[-1] >= rounds[0]  # more agents cannot be cheaper


def test_distance_two_extension(experiment):
    """EXT-DIST2: the trail extension succeeds at distance two."""
    (table,) = experiment("EXT-DIST2")
    for met in _column(table, "multihop met"):
        done, total = met.split("/")
        assert done == total
