"""Benchmark for the distributed sweep service vs a single warm engine.

PR 4's fabric scaled one sweep across the cores of one machine; the
sweep service (:mod:`repro.service`) scales it across worker *hosts*
behind a broker.  This gate simulates the smallest interesting fleet —
**3 worker-host processes** on localhost, each running units inline —
and drives it against the same grids a single warm engine executes
serially, measuring what the broker costs and what the fleet buys:

* the broker and its hosts stay **warm across submissions** (one
  fleet, several jobs), exactly how a long-lived service runs, so
  best-of-N captures the steady state after host spawn;
* every repetition submits a **fresh spec name** (``svc-rep0`` …), so
  each job really shards, leases, executes, and merges — the broker's
  content-addressed cache would otherwise serve repeats for free and
  the benchmark would measure a dictionary lookup;
* the merged output is asserted **byte-identical** (TrialRecord JSON
  lines, whole grid) to the serial engine's on every machine;
* with **≥ 4 cores** (3 hosts + broker/client need their own) the
  fleet must reach ≥ 2× the serial engine's aggregate trials/s
  (near-linear for 3 hosts minus broker overhead).  On smaller
  machines the hosts time-share cores, so the speedup is reported but
  not asserted — same policy as the other multi-process gates, and
  exactly why :mod:`tools/check_bench_trend.py` skips near-parity
  committed baselines.

The grid runs ``theorem1``/``theorem2`` — the paper's algorithms, at
milliseconds per trial — so unit execution dominates the socket
round-trips the broker adds (scaling the paper's real sweeps is what
the service is *for*; a `trivial`-algorithm grid would mostly measure
framing).

Runs under pytest (``pytest benchmarks/bench_sweep_service.py``) and
as a script (``python benchmarks/bench_sweep_service.py [--quick]``,
the CI perf-smoke job).  Emits ``results/BENCH_sweep_service.json``
via :mod:`_bench_json`, including the ``topology`` block
(``service_hosts``/``workers_per_host``) that makes its numbers
interpretable next to the single-host baselines.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import sys
import tempfile
import time
from pathlib import Path

import _bench_json

from repro.experiments.parallel import SweepSpec, run_sweep
from repro.experiments.report import Table
from repro.experiments.results_io import record_to_jsonable
from repro.service import Broker, run_worker, submit_sweep

SPEEDUP_GATE = 2.0
SERVICE_HOSTS = 3
WORKERS_PER_HOST = 1
MIN_CORES_FOR_GATE = 4
REPETITIONS = 3
UNIT_SIZE = 8


def _spec(quick: bool, repetition: int) -> SweepSpec:
    """One repetition's grid — a fresh name per repetition.

    The broker dedupes jobs by spec hash and serves finished specs
    from its durable cache, so reusing one name would time the cache,
    not the fleet.  The name is outside the trial semantics: records
    are byte-identical across names.
    """
    if quick:
        return SweepSpec(
            name=f"svc-rep{repetition}",
            families=("er-min-degree",),
            ns=(256, 384),
            deltas=("n^0.75",),
            algorithms=("theorem1",),
            seeds=tuple(range(32)),
        )
    return SweepSpec(
        name=f"svc-rep{repetition}",
        families=("er-min-degree", "geometric"),
        ns=(256, 384),
        deltas=("n^0.75",),
        algorithms=("theorem1", "theorem2"),
        seeds=tuple(range(32)),
    )


def _record_bytes(result) -> bytes:
    lines = [
        json.dumps(record_to_jsonable(r), sort_keys=True) for r in result.records
    ]
    return ("\n".join(lines) + "\n").encode("utf-8")


def run_benchmark(quick: bool = False, repetitions: int = REPETITIONS) -> Table:
    """Serial engine vs 3-host fleet; byte-equality always, gate on cores.

    Both paths run the *same* per-repetition specs.  The serial path
    is the single warm engine (``run_sweep(workers=1)`` — instance
    memo warm after the first repetition); the service path submits to
    one long-lived broker with ``SERVICE_HOSTS`` worker-host processes
    attached.  Best-of-N per path, aggregate trials/s for the gate.
    """
    cores = os.cpu_count() or 1
    specs = [_spec(quick, repetition) for repetition in range(repetitions)]
    trials = len(specs[0].points())

    serial_samples: list[float] = []
    serial_results = []
    for spec in specs:
        began = time.perf_counter()
        serial_results.append(run_sweep(spec, workers=1, fabric=False))
        serial_samples.append(time.perf_counter() - began)

    service_samples: list[float] = []
    service_results = []
    fork = multiprocessing.get_context("fork")
    with tempfile.TemporaryDirectory(prefix="bench-svc-") as tmp:
        with Broker(
            Path(tmp) / "cache", unit_size=UNIT_SIZE, lease_timeout=60.0
        ) as broker:
            hosts = [
                fork.Process(
                    target=run_worker,
                    args=(broker.address,),
                    kwargs={"workers": WORKERS_PER_HOST, "reconnect": 10.0},
                    daemon=True,
                )
                for _ in range(SERVICE_HOSTS)
            ]
            for host in hosts:
                host.start()
            try:
                for spec in specs:
                    began = time.perf_counter()
                    service_results.append(submit_sweep(broker.address, spec))
                    service_samples.append(time.perf_counter() - began)
            finally:
                for host in hosts:
                    host.terminate()
                for host in hosts:
                    host.join(timeout=10.0)

    for serial, service in zip(serial_results, service_results):
        assert _record_bytes(serial) == _record_bytes(service), (
            "service records diverged from the serial engine"
        )
    assert all(r.executed == trials for r in service_results), (
        "a repetition was served from cache — the fleet was never timed"
    )

    serial_time = min(serial_samples)
    service_time = min(service_samples)
    speedup = serial_time / service_time

    table = Table(
        title=f"SWEEP-SERVICE — {SERVICE_HOSTS} worker host(s) x "
              f"{WORKERS_PER_HOST} worker(s) behind one broker vs the serial "
              f"engine ({'quick' if quick else 'full'} parameters, "
              f"{cores} core(s))",
        headers=[
            "path", "trials", "best (s)", "trials/s", "speedup", "identical",
        ],
    )
    table.add_row(
        "serial engine", trials, round(serial_time, 3),
        round(trials / serial_time, 1), "1.00x", True,
    )
    table.add_row(
        f"service ({SERVICE_HOSTS} hosts)", trials, round(service_time, 3),
        round(trials / service_time, 1), f"{speedup:.2f}x", True,
    )
    table.add_note(
        f"gate: aggregate trials/s must be >= {SPEEDUP_GATE}x the serial "
        f"engine on machines with >= {MIN_CORES_FOR_GATE} cores (3 hosts + "
        "broker/client otherwise time-share); TrialRecord JSON byte-equality "
        "asserted on every machine, every repetition"
    )
    table.add_note(
        f"each repetition submits a fresh spec so the broker's cache cannot "
        f"serve it; executed={trials} verified per submission"
    )

    _bench_json.write_bench_json(
        "sweep_service",
        quick=quick,
        workloads={
            "grid": {
                "trials": trials,
                "baseline": _bench_json.summarize_samples(serial_samples),
                "service": _bench_json.summarize_samples(service_samples),
                "speedup": speedup,
            },
        },
        topology={
            "service_hosts": SERVICE_HOSTS,
            "workers_per_host": WORKERS_PER_HOST,
            "broker": "localhost",
            "unit_size": UNIT_SIZE,
        },
        metrics={
            "aggregate_speedup": speedup,
            "speedup_gate": SPEEDUP_GATE,
            "min_cores_for_gate": MIN_CORES_FOR_GATE,
            "cores": cores,
            "trials_total": trials,
            "serial_trials_per_s": trials / serial_time,
            "service_trials_per_s": trials / service_time,
        },
    )
    if cores >= MIN_CORES_FOR_GATE:
        assert speedup >= SPEEDUP_GATE, (
            f"service speedup {speedup:.2f}x is below the {SPEEDUP_GATE}x "
            f"gate on a {cores}-core machine"
        )
    return table


def test_sweep_service(capsys):
    """Pytest entry point: full parameters, table to the terminal."""
    table = run_benchmark(quick=False)
    with capsys.disabled():
        print()
        print(table.render())
        print()


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller grid (CI smoke; same assertions)",
    )
    args = parser.parse_args(argv)
    table = run_benchmark(quick=args.quick)
    print(table.render())
    return 0


if __name__ == "__main__":
    sys.exit(main())
