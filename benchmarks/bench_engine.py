"""Benchmark for the unified runtime engine: equivalence and speedup.

Replays identical seeded workloads through the frozen seed schedulers
(:mod:`repro.runtime.reference`) and the engine-backed façades, on the
three instance shapes named by the engine issue — ring, clique, and
random-regular — and checks the refactor's two promises:

* every execution is **byte-identical** between the two paths
  (full :class:`~repro.runtime.engine.ExecutionResult` equality,
  asserted on every machine and every workload);
* the engine's per-round throughput is **≥ 1.5×** the seed
  scheduler's, aggregated over all workloads (the refactor's gate).

Runs under pytest (``pytest benchmarks/bench_engine.py``) and as a
script (``python benchmarks/bench_engine.py [--quick]``, used by the
CI benchmark smoke job).  Emits ``results/BENCH_engine.json`` via
:mod:`_bench_json` so the per-round throughput trajectory is
machine-diffable across PRs.
"""

from __future__ import annotations

import random
import sys
import time
from dataclasses import dataclass
from typing import Callable

import _bench_json

from repro.baselines.random_walk import RandomWalker
from repro.experiments.report import Table
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    random_regular_graph,
)
from repro.runtime.actions import Move
from repro.runtime.agent import AgentProgram
from repro.runtime.reference import ReferenceSyncScheduler
from repro.runtime.scheduler import SyncScheduler

SPEEDUP_GATE = 1.5


class _Circler(AgentProgram):
    """Deterministic non-meeting walker: always take the last port."""

    def run(self, ctx):
        view = ctx.view
        while True:
            yield Move(view.neighbors[-1])


class _Shifter(AgentProgram):
    """On a clique: move to ``(v + 1) mod n`` forever (distance-preserving)."""

    def run(self, ctx):
        view = ctx.view
        n = ctx.id_space
        while True:
            yield Move((view.vertex + 1) % n)


@dataclass(frozen=True)
class _Workload:
    """One (graph, programs, seeds, budget) replay unit."""

    name: str
    graph_factory: Callable[[], object]
    program_factory: Callable[[], tuple[AgentProgram, AgentProgram]]
    seeds: tuple[int, ...]
    budget: int


def _workloads(quick: bool) -> list[_Workload]:
    scale = 1 if quick else 4
    return [
        # Ring: two deterministic circlers orbit in opposite directions
        # and never co-locate (parity), so every run simulates the full
        # budget — a pure per-round throughput probe.
        _Workload(
            name="ring-512/circlers",
            graph_factory=lambda: cycle_graph(512),
            program_factory=lambda: (_Circler(), _Circler()),
            seeds=(0,),
            budget=60_000 * scale,
        ),
        # Clique: both agents shift by +1 every round; their distance
        # is invariant, so again no meeting within the budget.
        _Workload(
            name="clique-256/shifters",
            graph_factory=lambda: complete_graph(256),
            program_factory=lambda: (_Shifter(), _Shifter()),
            seeds=(0,),
            budget=60_000 * scale,
        ),
        # Random-regular: lazy random walkers; executions may meet, so
        # several seeds accumulate rounds.  Both paths replay the exact
        # same executions, so the comparison stays apples-to-apples.
        _Workload(
            name="rr-400x8/random-walks",
            graph_factory=lambda: random_regular_graph(400, 8, random.Random("bench-engine")),
            program_factory=lambda: (RandomWalker(), RandomWalker()),
            seeds=tuple(range(4 * scale)),
            budget=30_000,
        ),
    ]


def _replay(scheduler_cls, workload: _Workload) -> tuple[list, float, int]:
    """Run every seeded execution of ``workload``; return results, time, rounds."""
    graph = workload.graph_factory()
    start_a, start_b = graph.vertices[0], graph.vertices[1]
    results = []
    rounds = 0
    elapsed = 0.0
    for seed in workload.seeds:
        program_a, program_b = workload.program_factory()
        scheduler = scheduler_cls(
            graph,
            program_a,
            program_b,
            start_a,
            start_b,
            seed=seed,
            whiteboards=False,
            max_rounds=workload.budget,
        )
        began = time.perf_counter()
        result = scheduler.run()
        elapsed += time.perf_counter() - began
        results.append(result)
        rounds += result.rounds
    return results, elapsed, rounds


def run_benchmark(quick: bool = False, repetitions: int = 3) -> Table:
    """Measure seed-vs-engine throughput; assert equivalence and the gate.

    Each workload is replayed ``repetitions`` times per path and the
    fastest time kept (best-of-N absorbs scheduler noise on loaded
    machines); the ≥ 1.5× gate is asserted on the aggregate.
    """
    table = Table(
        title=f"ENGINE — per-round throughput vs the seed schedulers "
              f"({'quick' if quick else 'full'} parameters)",
        headers=["workload", "rounds", "seed kr/s", "engine kr/s", "speedup", "identical"],
    )
    total_ref = total_new = 0.0
    total_rounds = 0
    workload_stats: dict[str, dict] = {}
    for workload in _workloads(quick):
        ref_samples: list[float] = []
        new_samples: list[float] = []
        ref_results = new_results = None
        rounds = 0
        for _ in range(repetitions):
            ref_results, elapsed, rounds = _replay(ReferenceSyncScheduler, workload)
            ref_samples.append(elapsed)
            new_results, elapsed, engine_rounds = _replay(SyncScheduler, workload)
            new_samples.append(elapsed)
            assert engine_rounds == rounds
        assert ref_results == new_results, (
            f"engine diverged from the seed scheduler on {workload.name}"
        )
        ref_time, new_time = min(ref_samples), min(new_samples)
        table.add_row(
            workload.name,
            rounds,
            round(rounds / ref_time / 1000, 1),
            round(rounds / new_time / 1000, 1),
            f"{ref_time / new_time:.2f}x",
            True,
        )
        workload_stats[workload.name] = {
            "rounds": rounds,
            "seed": _bench_json.summarize_samples(ref_samples),
            "engine": _bench_json.summarize_samples(new_samples),
            "speedup": ref_time / new_time,
        }
        total_ref += ref_time
        total_new += new_time
        total_rounds += rounds

    speedup = total_ref / total_new
    table.add_row(
        "TOTAL",
        total_rounds,
        round(total_rounds / total_ref / 1000, 1),
        round(total_rounds / total_new / 1000, 1),
        f"{speedup:.2f}x",
        True,
    )
    table.add_note(
        f"gate: aggregate engine speedup must be >= {SPEEDUP_GATE}x "
        "(ExecutionResult equality is asserted per workload)"
    )
    _bench_json.write_bench_json(
        "engine",
        quick=quick,
        workloads=workload_stats,
        metrics={
            "aggregate_speedup": speedup,
            "speedup_gate": SPEEDUP_GATE,
            "rounds_total": total_rounds,
            "seed_rounds_per_s": total_rounds / total_ref,
            "engine_rounds_per_s": total_rounds / total_new,
        },
    )
    assert speedup >= SPEEDUP_GATE, (
        f"engine speedup {speedup:.2f}x is below the {SPEEDUP_GATE}x gate"
    )
    return table


def test_engine_speedup(capsys):
    """Pytest entry point: full parameters, table to the terminal."""
    table = run_benchmark(quick=False)
    with capsys.disabled():
        print()
        print(table.render())
        print()


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller budgets/seed counts (CI smoke; same assertions)",
    )
    args = parser.parse_args(argv)
    table = run_benchmark(quick=args.quick)
    print(table.render())
    return 0


if __name__ == "__main__":
    sys.exit(main())
