"""Benchmark for the parallel sweep engine: determinism and speedup.

Runs one moderate (family × n × algorithm × seed) grid twice — inline
and through the process pool — and checks the engine's two promises:

* the exported JSON-lines records are **byte-identical** regardless of
  worker count (determinism is a correctness property, asserted on
  every machine);
* with ≥ 4 cores the fanned-out run is at least 2× faster wall-clock
  (the speedup assertion is skipped on smaller machines, where the
  pool has nothing to fan out over — the table still reports it).
"""

from __future__ import annotations

import json
import os

from repro.experiments.parallel import SweepSpec, run_sweep
from repro.experiments.report import Table
from repro.experiments.results_io import record_to_jsonable

SPEC = SweepSpec(
    name="bench-parallel",
    families=("er-min-degree", "geometric"),
    ns=(300, 450, 600, 750),
    deltas=("n^0.75",),
    algorithms=("explore", "trivial"),
    seeds=tuple(range(8)),
)


def _record_bytes(result) -> bytes:
    lines = [
        json.dumps(record_to_jsonable(r), sort_keys=True) for r in result.records
    ]
    return ("\n".join(lines) + "\n").encode("utf-8")


def test_parallel_sweep_speedup(capsys, bench_json):
    """Serial vs pooled sweep: identical bytes, near-linear speedup."""
    cores = os.cpu_count() or 1
    # At least 2 so the pool path (not the inline fast path) is what
    # determinism is checked against, even on single-core machines.
    workers = max(2, min(4, cores))

    serial = run_sweep(SPEC, workers=1)
    fanned = run_sweep(SPEC, workers=workers)

    assert _record_bytes(serial) == _record_bytes(fanned), (
        "sweep records differ between workers=1 and the process pool"
    )

    speedup = serial.elapsed / max(fanned.elapsed, 1e-9)
    table = Table(
        title=f"PARALLEL-SWEEP — {len(SPEC.points())} trials, {cores} core(s)",
        headers=["workers", "wall clock (s)", "speedup", "byte-identical"],
    )
    table.add_row(1, serial.elapsed, 1.0, True)
    table.add_row(workers, fanned.elapsed, speedup, True)
    table.add_note(
        "speedup asserted >= 2x only on machines with >= 4 cores; "
        "determinism is asserted everywhere"
    )
    with capsys.disabled():
        print()
        print(table.render())
        print()

    bench_json(
        "parallel_sweep",
        quick=True,
        workloads={
            "grid": {
                "trials": len(SPEC.points()),
                "serial": {"median_s": serial.elapsed, "samples": 1},
                "fanned": {"median_s": fanned.elapsed, "samples": 1},
                "speedup": speedup,
            },
        },
        metrics={"workers": workers, "cores": cores, "byte_identical": True},
    )

    if cores >= 4:
        assert speedup >= 2.0, (
            f"expected >= 2x speedup with {workers} workers on {cores} cores, "
            f"measured {speedup:.2f}x"
        )
