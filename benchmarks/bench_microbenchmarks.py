"""Micro-benchmarks of the core primitives (wall-clock, via pytest-benchmark).

Unlike the experiment benchmarks (which measure *rounds*, the paper's
metric), these measure the simulator's wall-clock throughput so
regressions in the substrate are caught.
"""

from __future__ import annotations

import random

import pytest

from repro.core.api import rendezvous
from repro.core.constants import Constants
from repro.core.construct import ConstructOnlyProgram
from repro.graphs.generators import complete_graph, random_graph_with_min_degree
from repro.runtime.single import run_single_agent


@pytest.fixture(scope="module")
def bench_graph():
    return random_graph_with_min_degree(400, 90, random.Random("bench"))


def test_scheduler_round_throughput(benchmark, bench_graph):
    """Wall time of a full random-walk execution (many simulated rounds)."""

    def run():
        return rendezvous(bench_graph, "random-walk", seed=5, max_rounds=200_000)

    result = benchmark(run)
    assert result.met


def test_construct_wall_time(benchmark, bench_graph):
    """Wall time of one solo Construct run (tuned constants)."""
    constants = Constants.tuned()

    def run():
        program = ConstructOnlyProgram(bench_graph.min_degree, constants)
        run_single_agent(
            program, bench_graph, bench_graph.vertices[0], rounds=10**9,
            seed=0, id_space=bench_graph.id_space,
        )
        return program.outcome

    outcome = benchmark(run)
    assert outcome.completed


def test_theorem1_wall_time(benchmark, bench_graph):
    """Wall time of a full Theorem 1 execution."""

    def run():
        return rendezvous(bench_graph, "theorem1", seed=3,
                          constants=Constants.tuned())

    result = benchmark(run)
    assert result.met


def test_anderson_weber_wall_time(benchmark):
    """Wall time of the Anderson-Weber baseline on K_400."""
    graph = complete_graph(400)

    def run():
        return rendezvous(graph, "anderson-weber", seed=1)

    result = benchmark(run)
    assert result.met


def test_graph_generation_wall_time(benchmark):
    """Wall time of the main workload generator."""

    def run():
        return random_graph_with_min_degree(1000, 180, random.Random(0))

    graph = benchmark(run)
    assert graph.min_degree >= 180
