"""Benchmarks for the four lower bounds (Theorems 3-6, Figures 1-3)."""

from __future__ import annotations


def _column(table, name):
    index = table.headers.index(name)
    return [row[index] for row in table.rows]


def test_lb_min_degree(experiment):
    """LB-MINDEG: Ω(Δ) on double stars — rounds/n bounded below."""
    (table,) = experiment("LB-MINDEG")
    for ratio in _column(table, "trivial rounds/n"):
        assert ratio >= 0.1, f"trivial finished in o(n) rounds: {ratio}"
    for ratio in _column(table, "walk rounds/n"):
        assert ratio >= 0.1


def test_lb_kt0(experiment):
    """LB-KT0: Ω(n) without neighborhood IDs."""
    (table,) = experiment("LB-KT0")
    for ratio in _column(table, "rounds/n"):
        assert ratio >= 1.0, f"KT0 instance solved in o(n): {ratio}"


def test_lb_distance_two(experiment):
    """LB-DIST2: the trivial probe fails outright at distance 2."""
    (table,) = experiment("LB-DIST2")
    for met in _column(table, "trivial met"):
        assert met.startswith("0/"), f"trivial probe met at distance 2: {met}"
    for ratio in _column(table, "walk rounds/n"):
        assert ratio >= 0.5


def test_lb_deterministic(experiment):
    """LB-DET: deterministic pair blocked; randomization breaks through."""
    (table,) = experiment("LB-DET")
    for det_met in _column(table, "deterministic met"):
        assert det_met is False
    for rand_met in _column(table, "randomized (theorem1) met"):
        assert rand_met is True
