"""Benchmark for the doubling estimation overhead (Corollary 2)."""

from __future__ import annotations


def _column(table, name):
    index = table.headers.index(name)
    return [row[index] for row in table.rows]


def test_estimation_constant_overhead(experiment):
    """ESTIMATION: estimated-delta runs stay within a constant factor."""
    (table,) = experiment("ESTIMATION")
    for ratio in _column(table, "ratio"):
        assert 0.1 <= ratio <= 10.0, f"estimation overhead ratio {ratio}"
    for restarts in _column(table, "max restarts"):
        assert restarts <= 10
