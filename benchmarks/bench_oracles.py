"""Benchmark: oracle-equipped related work vs the oracle-free algorithm."""

from __future__ import annotations


def _column(table, name):
    index = table.headers.index(name)
    return [row[index] for row in table.rows]


def test_oracle_hierarchy(experiment):
    """ORACLES: map < distance-detection < oracle-free, at every size."""
    (table,) = experiment("ORACLES")
    map_rounds = _column(table, "map-oracle mean")
    dist_rounds = _column(table, "distance-oracle mean")
    t1_rounds = _column(table, "theorem1 mean")
    for m, d, t in zip(map_rounds, dist_rounds, t1_rounds):
        assert m <= d, "the map oracle must dominate distance detection"
        assert d <= t, "distance detection must dominate the oracle-free algorithm"
