"""Benchmark for the columnar results warehouse and its fused queries.

PR 8's tentpole: sweep results persisted as per-column int64 segments
(:mod:`repro.experiments.warehouse`) and summarized by one fused pass
over the mmap'd columns (:mod:`repro.experiments.query`), instead of
re-parsing a JSON-lines export record by record.  Two hard gates on a
synthetic many-record sweep (~120k records quick, ~1M full):

* **report throughput** — ``summarize_warehouse`` must be **≥ 10×**
  faster than the record-streaming ``summarize_jsonl`` fold over the
  same records (tables asserted byte-identical first);
* **on-disk size** — the warehouse directory must be **≥ 5×** smaller
  than the JSONL pipeline it replaces (result cache + report export;
  the warehouse serves both roles from one directory).  The ratio
  against the export alone is printed for context, not gated.

A differential matrix then replays every registered algorithm × port
model × scenario preset (tiny graphs, the cells KT0 forbids skipped)
and asserts the warehouse report and the streaming sweep summaries are
byte-identical to the record-holding JSONL oracle.

Runs under pytest (``pytest benchmarks/bench_warehouse.py``) and as a
script (``python benchmarks/bench_warehouse.py [--quick]``, the CI
perf-smoke job).  Emits ``results/BENCH_warehouse.json`` via
:mod:`_bench_json`.
"""

from __future__ import annotations

import random
import shutil
import sys
import tempfile
import time
from pathlib import Path

import _bench_json

from repro.core.api import ALGORITHMS
from repro.errors import ProtocolError
from repro.experiments.cache import ResultCache
from repro.experiments.harness import TrialRecord, run_trial
from repro.experiments.parallel import SweepSpec, run_sweep
from repro.experiments.report import (
    Table,
    summarize_jsonl,
    summarize_records,
    summarize_warehouse,
)
from repro.experiments.results_io import write_records_jsonl
from repro.experiments.warehouse import write_records_warehouse
from repro.graphs.generators import random_graph_with_min_degree
from repro.graphs.ports import PortLabeling, PortModel
from repro.scenarios import SCENARIOS

REPORT_SPEEDUP_GATE = 10.0
SIZE_GATE = 5.0


def synthetic_records(count: int) -> list[TrialRecord]:
    """A sweep-shaped record stream: grouped axes, per-agent reports.

    Mimics what a real grid leaves behind — a handful of (algorithm,
    graph, n, δ) groups with many seeds each, every record carrying
    the two agents' report dicts — without paying for a million real
    executions.  Deterministic, so both storage formats see the same
    bytes.
    """
    rng = random.Random("bench-warehouse")
    algorithms = ("trivial", "theorem1", "theorem2", "random-walk")
    sizes = (100, 200, 400)
    groups = [(a, n) for n in sizes for a in algorithms]
    seeds_per_group = -(-count // len(groups))
    records = []
    for i in range(count):
        # Grid order, seeds innermost — the layout a sweep leaves on
        # disk, and what gives the columns their long constant runs.
        algorithm, n = groups[i // seeds_per_group]
        delta = int(n ** 0.75)
        rounds = rng.randrange(1, 40 * n)
        met = rounds < 30 * n
        moves = rounds + rng.randrange(rounds + 1)
        records.append(TrialRecord(
            algorithm=algorithm,
            graph_name=f"er-min-deg(n={n},delta>={delta})",
            n=n,
            id_space=n * n,
            delta=delta,
            max_degree=delta + rng.randrange(8),
            seed=i % seeds_per_group,
            met=met,
            rounds=rounds,
            total_moves=moves,
            whiteboard_writes=rng.randrange(3 * delta),
            reports={
                "a": {"probes": rng.randrange(n), "moves": moves // 2,
                      "phase": "sampling"},
                "b": {"probes": rng.randrange(n), "moves": moves - moves // 2,
                      "phase": "waiting"},
            },
        ))
    return records


def _tree_bytes(path: Path) -> int:
    if path.is_file():
        return path.stat().st_size
    return sum(p.stat().st_size for p in path.rglob("*") if p.is_file())


def _scenario_matrix_records():
    """Per (algorithm, port model, scenario) cell: a few real trials.

    KT0 hides neighbor identifiers, so every algorithm except the
    random walk rejects it with a clean :class:`ProtocolError` at
    setup — those cells are skipped, mirroring the sweep engine's own
    capability matrix.
    """
    graph = random_graph_with_min_degree(32, 9, random.Random("bench-wh-matrix"))
    labeling = PortLabeling(graph, rng=random.Random(5))
    cells = []
    for algorithm in ALGORITHMS:
        for port_model in (PortModel.KT1, PortModel.KT0):
            for scenario in SCENARIOS:
                records = []
                skipped = 0
                for seed in (1, 2):
                    try:
                        records.append(run_trial(
                            graph, algorithm, seed,
                            port_model=port_model,
                            labeling=labeling if port_model is PortModel.KT0
                            else None,
                            scenario=scenario,
                            max_rounds=2_000,
                        ))
                    except ProtocolError:
                        skipped += 1
                name = f"{algorithm}/{port_model.value}/{scenario}"
                cells.append((name, records, skipped))
    return cells


def _differential_matrix(tmp: Path) -> tuple[int, int]:
    """Assert warehouse reports == JSONL oracle on every supported cell."""
    checked = skipped = 0
    for name, records, _ in _scenario_matrix_records():
        if not records:
            skipped += 1
            continue
        jsonl = write_records_jsonl(records, tmp / "cell.jsonl")
        warehouse = write_records_warehouse(records, tmp / "cell.wh")
        oracle = summarize_jsonl(jsonl, title=name).render()
        fused = summarize_warehouse(warehouse, title=name).render()
        assert fused == oracle, (
            f"warehouse report diverged from the JSONL oracle on {name}:\n"
            f"{fused}\n--- oracle ---\n{oracle}"
        )
        checked += 1
    return checked, skipped


def _streaming_differential(tmp: Path) -> str:
    """Streamed warehouse sweep summaries == record-holding summaries."""
    spec = SweepSpec(
        name="bench-wh",
        families=("er-min-degree",),
        ns=(48,),
        deltas=("n^0.75",),
        # Topology-preserving scenarios only: churn can abort a whole
        # sweep with a clean ProtocolError, which is the workloads'
        # per-trial story, not this differential's.
        algorithms=("trivial", "random-walk"),
        scenarios=("none", "wb-corrupt"),
        seeds=tuple(range(3)),
        preset="testing",
        max_rounds=3_000,
    )
    held = run_sweep(spec, workers=1)
    oracle = summarize_records(held.records, title="STREAM").render()
    streamed = run_sweep(
        spec, workers=1, cache_dir=tmp / "stream-cache",
        warehouse=True, stream=True,
    )
    assert (
        streamed.summary_table().rows == held.summary_table().rows
    ), "streamed warehouse summary diverged from the record-holding sweep"
    warehouse_dir = tmp / "stream-cache" / f"{spec.spec_hash()}.wh"
    fused = summarize_warehouse(warehouse_dir, title="STREAM").render()
    assert fused == oracle, (
        f"swept warehouse report diverged:\n{fused}\n--- oracle ---\n{oracle}"
    )
    return f"{len(held.records)} swept records"


def run_benchmark(quick: bool = False, repetitions: int = 3) -> Table:
    """Measure report throughput and storage size; assert both gates."""
    count = 120_000 if quick else 1_000_000
    table = Table(
        title=f"WAREHOUSE — columnar storage + fused reports vs JSONL "
              f"({'quick' if quick else 'full'} parameters, "
              f"{count:,} records)",
        headers=["path", "report time", "speedup", "bytes on disk", "size ratio"],
    )
    tmp = Path(tempfile.mkdtemp(prefix="bench-warehouse-"))
    try:
        records = synthetic_records(count)
        export = write_records_jsonl(records, tmp / "export.jsonl")
        with ResultCache(tmp, "benchcache") as cache:
            cache.append_many(
                (f"k{i}", record) for i, record in enumerate(records)
            )
        cache_file = tmp / "benchcache.jsonl"
        warehouse = write_records_warehouse(records, tmp / "sweep.wh")

        jsonl_samples: list[float] = []
        fused_samples: list[float] = []
        oracle_render = fused_render = None
        for _ in range(repetitions):
            began = time.perf_counter()
            oracle_render = summarize_jsonl(export, title="BENCH").render()
            jsonl_samples.append(time.perf_counter() - began)
            began = time.perf_counter()
            fused_render = summarize_warehouse(warehouse, title="BENCH").render()
            fused_samples.append(time.perf_counter() - began)
        assert fused_render == oracle_render, (
            "fused warehouse report diverged from the streaming JSONL fold"
        )
        jsonl_time, fused_time = min(jsonl_samples), min(fused_samples)
        speedup = jsonl_time / fused_time

        pipeline_bytes = _tree_bytes(export) + _tree_bytes(cache_file)
        warehouse_bytes = _tree_bytes(warehouse)
        size_ratio = pipeline_bytes / warehouse_bytes
        export_ratio = _tree_bytes(export) / warehouse_bytes

        table.add_row(
            "jsonl (cache + export)", f"{jsonl_time:.3f}s", "1.00x",
            pipeline_bytes, "1.00x",
        )
        table.add_row(
            "warehouse (fused)", f"{fused_time:.3f}s", f"{speedup:.2f}x",
            warehouse_bytes, f"{size_ratio:.2f}x smaller",
        )
        table.add_note(
            f"gates: report speedup >= {REPORT_SPEEDUP_GATE}x, pipeline size "
            f"ratio >= {SIZE_GATE}x (vs the export alone: "
            f"{export_ratio:.2f}x smaller, not gated)"
        )

        checked, skipped = _differential_matrix(tmp)
        table.add_note(
            f"differential matrix: {checked} algorithm x port-model x "
            f"scenario cells byte-identical to the JSONL oracle "
            f"({skipped} KT0-incompatible cells skipped); streaming: "
            f"{_streaming_differential(tmp)} byte-identical"
        )

        _bench_json.write_bench_json(
            "warehouse",
            quick=quick,
            workloads={
                "report-synthetic": {
                    "records": count,
                    "baseline": _bench_json.summarize_samples(jsonl_samples),
                    "fused": _bench_json.summarize_samples(fused_samples),
                    "speedup": speedup,
                },
            },
            metrics={
                "aggregate_speedup": speedup,
                "report_speedup_gate": REPORT_SPEEDUP_GATE,
                "size_gate": SIZE_GATE,
                "pipeline_bytes": pipeline_bytes,
                "warehouse_bytes": warehouse_bytes,
                "size_ratio": size_ratio,
                "export_only_size_ratio": export_ratio,
                "matrix_cells_checked": checked,
                "matrix_cells_skipped": skipped,
            },
        )
        assert speedup >= REPORT_SPEEDUP_GATE, (
            f"fused report speedup {speedup:.2f}x is below the "
            f"{REPORT_SPEEDUP_GATE}x gate"
        )
        assert size_ratio >= SIZE_GATE, (
            f"warehouse is only {size_ratio:.2f}x smaller than the JSONL "
            f"pipeline, below the {SIZE_GATE}x gate"
        )
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    return table


def test_warehouse(capsys):
    """Pytest entry point: quick parameters, table to the terminal."""
    table = run_benchmark(quick=True)
    with capsys.disabled():
        print()
        print(table.render())
        print()


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="~120k synthetic records instead of ~1M (CI smoke; same gates)",
    )
    args = parser.parse_args(argv)
    table = run_benchmark(quick=args.quick)
    print(table.render())
    return 0


if __name__ == "__main__":
    sys.exit(main())
