"""Shared machine-readable benchmark emission for ``benchmarks/``.

Every ``bench_*.py`` prints human tables; this module gives them one
way to also record a **benchmark trajectory** across PRs: a
``results/BENCH_<name>.json`` file per benchmark with median/p90
timings per workload, the quick/full mode, and interpreter info, so
successive runs (and the CI artifacts job) can be diffed mechanically.

Usable from both execution modes of a benchmark:

* as a pytest module (``pytest benchmarks/bench_engine.py``) — the
  ``benchmarks/conftest.py`` fixture re-exports :func:`write_bench_json`;
* as a script (``python benchmarks/bench_engine.py``) — plain
  ``import _bench_json`` (the script's directory is on ``sys.path``).

Schema of the emitted file::

    {
      "bench": "<name>",
      "mode": "quick" | "full",
      "interpreter": {"implementation", "version", "platform"},
      "workloads": {"<workload>": {"median_s", "p90_s", "min_s",
                                    "max_s", "samples", ...}},
      "metrics": {...}          # benchmark-specific scalars (gates,
    }                           # speedups, trial counts)

``docs/performance.md`` documents how to run the benchmarks and read
these files.
"""

from __future__ import annotations

import json
import math
import platform
import statistics
from pathlib import Path
from typing import Any, Sequence

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

__all__ = ["RESULTS_DIR", "interpreter_info", "summarize_samples", "write_bench_json"]


def interpreter_info() -> dict[str, str]:
    """The interpreter fingerprint stamped into every benchmark file."""
    return {
        "implementation": platform.python_implementation(),
        "version": platform.python_version(),
        "platform": platform.platform(),
    }


def _percentile(ordered: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample list."""
    rank = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
    return ordered[rank]


def summarize_samples(samples: Sequence[float]) -> dict[str, float | int]:
    """Median/p90/min/max summary of raw timing samples (seconds)."""
    if not samples:
        raise ValueError("no samples to summarize")
    ordered = sorted(samples)
    return {
        "median_s": statistics.median(ordered),
        "p90_s": _percentile(ordered, 0.90),
        "min_s": ordered[0],
        "max_s": ordered[-1],
        "samples": len(ordered),
    }


def write_bench_json(
    name: str,
    *,
    quick: bool,
    workloads: dict[str, dict[str, Any]],
    metrics: dict[str, Any] | None = None,
) -> Path:
    """Write ``results/BENCH_<name>.json`` and return its path.

    ``workloads`` maps workload name to a JSON-able stats dict —
    typically built around :func:`summarize_samples` — and ``metrics``
    carries benchmark-level scalars (aggregate speedups, gate values,
    trial counts).
    """
    payload: dict[str, Any] = {
        "bench": name,
        "mode": "quick" if quick else "full",
        "interpreter": interpreter_info(),
        "workloads": workloads,
    }
    if metrics:
        payload["metrics"] = metrics
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{name}.json"
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path
