"""Shared machine-readable benchmark emission for ``benchmarks/``.

Every ``bench_*.py`` prints human tables; this module gives them one
way to also record a **benchmark trajectory** across PRs: a
``results/BENCH_<name>.json`` file per benchmark with median/p90
timings per workload, the quick/full mode, and interpreter info, so
successive runs (and the CI artifacts job) can be diffed mechanically.

Usable from both execution modes of a benchmark:

* as a pytest module (``pytest benchmarks/bench_engine.py``) — the
  ``benchmarks/conftest.py`` fixture re-exports :func:`write_bench_json`;
* as a script (``python benchmarks/bench_engine.py``) — plain
  ``import _bench_json`` (the script's directory is on ``sys.path``).

Schema of the emitted file::

    {
      "bench": "<name>",
      "mode": "quick" | "full",
      "interpreter": {"implementation", "version", "platform"},
      "workloads": {"<workload>": {"median_s", "p90_s", "min_s",
                                    "max_s", "samples", ...}},
      "topology": {"service_hosts": N, "workers_per_host": K, ...},
      "metrics": {..., "peak_rss_self_bytes", "peak_rss_children_bytes"}
    }                           # benchmark-specific scalars (gates,
                                # speedups, trial counts) — peak RSS of
                                # this process and of reaped children is
                                # stamped in automatically where the
                                # platform exposes it

The optional ``topology`` block records the process layout a
distributed benchmark ran with (``service_hosts`` worker hosts times
``workers_per_host`` fabric workers for the sweep service); timings
from different topologies are not comparable, so the layout must
travel with the numbers.

``docs/performance.md`` documents how to run the benchmarks and read
these files.
"""

from __future__ import annotations

import json
import math
import platform
import statistics
import sys
from pathlib import Path
from typing import Any, Sequence

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

__all__ = [
    "RESULTS_DIR",
    "interpreter_info",
    "peak_rss",
    "summarize_samples",
    "write_bench_json",
]


def interpreter_info() -> dict[str, str]:
    """The interpreter fingerprint stamped into every benchmark file."""
    return {
        "implementation": platform.python_implementation(),
        "version": platform.python_version(),
        "platform": platform.platform(),
    }


def peak_rss() -> dict[str, int]:
    """Peak resident set sizes in bytes: this process and reaped children.

    Read from ``resource.getrusage`` (``ru_maxrss`` is KiB on Linux,
    bytes on macOS); empty on platforms without the :mod:`resource`
    module (Windows), so callers can merge the result into metrics
    unconditionally.  The children number only covers *already reaped*
    worker processes — benchmarks that use the persistent fabric
    should shut it down before the final reading.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - Windows
        return {}
    unit = 1024 if not sys.platform.startswith("darwin") else 1
    return {
        "peak_rss_self_bytes": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * unit,
        "peak_rss_children_bytes": (
            resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss * unit
        ),
    }


def _percentile(ordered: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample list."""
    rank = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
    return ordered[rank]


def summarize_samples(samples: Sequence[float]) -> dict[str, float | int]:
    """Median/p90/min/max summary of raw timing samples (seconds)."""
    if not samples:
        raise ValueError("no samples to summarize")
    ordered = sorted(samples)
    return {
        "median_s": statistics.median(ordered),
        "p90_s": _percentile(ordered, 0.90),
        "min_s": ordered[0],
        "max_s": ordered[-1],
        "samples": len(ordered),
    }


def write_bench_json(
    name: str,
    *,
    quick: bool,
    workloads: dict[str, dict[str, Any]],
    metrics: dict[str, Any] | None = None,
    topology: dict[str, Any] | None = None,
) -> Path:
    """Write ``results/BENCH_<name>.json`` and return its path.

    ``workloads`` maps workload name to a JSON-able stats dict —
    typically built around :func:`summarize_samples` — and ``metrics``
    carries benchmark-level scalars (aggregate speedups, gate values,
    trial counts).  ``topology`` records the process layout of a
    distributed benchmark (``service_hosts``/``workers_per_host``) so
    readers never compare timings across different fleets.  Peak-RSS
    readings (:func:`peak_rss`) are merged into the metrics
    automatically unless the caller already provided them.
    """
    payload: dict[str, Any] = {
        "bench": name,
        "mode": "quick" if quick else "full",
        "interpreter": interpreter_info(),
        "workloads": workloads,
    }
    if topology:
        payload["topology"] = dict(topology)
    merged_metrics = dict(metrics or {})
    for key, value in peak_rss().items():
        merged_metrics.setdefault(key, value)
    if merged_metrics:
        payload["metrics"] = merged_metrics
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{name}.json"
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path
