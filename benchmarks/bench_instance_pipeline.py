"""Benchmark for the CSR-native instance pipeline: setup throughput.

PR 3 made trials fast (compiled plans) and PR 4 made transport fast
(shared-memory fabric); this gate protects the layer added after them
— the CSR-native construction pipeline (:mod:`repro.graphs.build`):
generators emit straight into flat int64 buffers, ``StaticGraph``
adopts them zero-copy with lazy dict views, ``PortLabeling`` derives
KT0 tables in flat form, and ``ExecutionPlan.compile`` adopts the same
buffers without re-flattening.  Instance *setup* — generate → label →
compile → flat export surface — is replayed through both pipelines:

* **baseline** — the frozen pre-builder path
  (:mod:`repro.graphs.reference`): dict-of-sets generation, eager
  tuple/frozenset graph views, eager two-layer port dictionaries, and
  the row-first plan flatten;
* **csr** — the current modules, exactly what
  ``repro.experiments.parallel`` runs per instance.

Three promises are asserted on every machine:

* the flat plan buffers (ids / degrees / CSR offsets / CSR indices /
  KT0 port table) are **byte-identical** old-vs-new — checked for
  every registered sweep family under both port models (dilated ID
  spaces included) and for every timed workload;
* aggregate setup throughput of the CSR path is **≥ 2×** the frozen
  baseline over a mixed-family workload set including a large-``n``
  point;
* peak traced Python-heap memory of the large-``n`` setup is **lower**
  on the CSR path (``tracemalloc``; the dict detour's tuples,
  frozensets, and port dictionaries never exist).

Runs under pytest (``pytest benchmarks/bench_instance_pipeline.py``)
and as a script (``python benchmarks/bench_instance_pipeline.py
[--quick]``, the CI perf-smoke job).  Emits
``results/BENCH_instance_pipeline.json`` via :mod:`_bench_json`.
"""

from __future__ import annotations

import random
import sys
import time
import tracemalloc
from array import array
from dataclasses import dataclass
from typing import Callable

import _bench_json

from repro.experiments.parallel import GRAPH_FAMILIES
from repro.experiments.report import Table
from repro.graphs import generators, reference
from repro.graphs.generators import dilate_id_space
from repro.graphs.graph import StaticGraph
from repro.graphs.ports import PortLabeling, PortModel
from repro.runtime.plan import ExecutionPlan

SPEEDUP_GATE = 2.0

#: Frozen twin of every registered sweep family (same call signature).
REFERENCE_FAMILIES: dict[str, Callable] = {
    "er-min-degree": reference.random_graph_with_min_degree,
    "geometric": reference.random_geometric_dense_graph,
    "regular": reference.random_regular_graph,
    "powerlaw": reference.powerlaw_graph_with_floor,
    "complete": lambda n, delta, rng: reference.complete_graph(n),
}


@dataclass(frozen=True)
class _Workload:
    """One timed setup unit: family × size × δ × port model."""

    name: str
    family: str
    n: int
    delta: int
    port_model: PortModel


def _workloads(quick: bool) -> list[_Workload]:
    s = 2 if quick else 1  # quick halves (roughly) every size
    return [
        # The large-n point: a dense fixed shape where the dict detour
        # is purely overhead (row-mode CSR emission has no sort at all).
        _Workload("complete-large/KT1", "complete", 1600 // s, 8, PortModel.KT1),
        # The main Theorem 1/2 workload, both port models — KT0 adds
        # the flat-vs-dict port table derivation to the comparison.
        _Workload("er-min-degree/KT1", "er-min-degree", 600 // s, 24, PortModel.KT1),
        _Workload("er-min-degree/KT0", "er-min-degree", 600 // s, 24, PortModel.KT0),
        # Sparse regular at parameters where the configuration-model
        # pairing usually succeeds: with a denser degree the timing is
        # ~100% rejection-sampling retries — identical in both
        # pipelines — which would measure the sampler, not the setup.
        _Workload("regular/KT1", "regular", 400 // s, 3, PortModel.KT1),
        # Skewed degrees under KT0 (the lower-bound model's shape).
        _Workload("powerlaw/KT0", "powerlaw", 500 // s, 10, PortModel.KT0),
        # O(n²) geometry dominates both paths identically — the
        # workload the pipeline helps least.
        _Workload("geometric/KT1", "geometric", 256 // s, 12, PortModel.KT1),
    ]


def _baseline_setup(workload: _Workload) -> dict[str, array]:
    """Frozen pipeline: dict generator → eager ports → row-first flatten."""
    rng = random.Random(f"pipeline:{workload.name}")
    graph = REFERENCE_FAMILIES[workload.family](workload.n, workload.delta, rng)
    table = None
    if workload.port_model is PortModel.KT0:
        table, _ = reference.reference_port_tables(
            graph, random.Random(f"ports:{workload.name}")
        )
    return reference.reference_plan_buffers(graph, table, workload.port_model)


def _csr_setup(workload: _Workload) -> dict[str, array]:
    """Current pipeline: builder generator → flat labeling → zero-copy compile."""
    rng = random.Random(f"pipeline:{workload.name}")
    graph = GRAPH_FAMILIES[workload.family](workload.n, workload.delta, rng)
    labeling = None
    if workload.port_model is PortModel.KT0:
        labeling = PortLabeling(graph, rng=random.Random(f"ports:{workload.name}"))
    plan = ExecutionPlan.compile(
        graph, labeling=labeling, port_model=workload.port_model
    )
    buffers = {
        "ids": array("q", plan.ids),
        "degrees": plan.degrees,
        "offsets": plan.neighbor_offsets,
        "indices": plan.neighbor_indices,
    }
    if workload.port_model is PortModel.KT0:
        buffers["ports"] = plan.port_targets
    return buffers


def _buffer_bytes(buffers: dict) -> dict[str, bytes]:
    return {key: bytes(value) for key, value in buffers.items()}


def _assert_identical(old: dict, new: dict, context: str) -> None:
    old_bytes, new_bytes = _buffer_bytes(old), _buffer_bytes(new)
    assert old_bytes.keys() == new_bytes.keys(), (
        f"buffer sets diverged on {context}: {sorted(old_bytes)} vs {sorted(new_bytes)}"
    )
    for key in old_bytes:
        assert old_bytes[key] == new_bytes[key], (
            f"{key} buffer diverged between pipelines on {context}"
        )


def _check_all_families() -> int:
    """Byte-equality for every registered family × both port models.

    Small instances (the property is size-independent; the timed
    workloads re-assert it at scale), plus one dilated-ID-space case.
    Returns the number of (family, model) combinations checked.
    """
    checked = 0
    for family in sorted(GRAPH_FAMILIES):
        for port_model in (PortModel.KT1, PortModel.KT0):
            workload = _Workload(f"check:{family}", family, 36, 8, port_model)
            _assert_identical(
                _baseline_setup(workload),
                _csr_setup(workload),
                f"{family} × {port_model.value}",
            )
            checked += 1
    # Non-contiguous identifiers: dilate one instance through both paths.
    for port_model in (PortModel.KT1, PortModel.KT0):
        old_graph = dilate_id_space(
            reference.random_graph_with_min_degree(30, 6, random.Random("d")),
            5,
            random.Random("map"),
        )
        new_graph = dilate_id_space(
            generators.random_graph_with_min_degree(30, 6, random.Random("d")),
            5,
            random.Random("map"),
        )
        table = labeling = None
        if port_model is PortModel.KT0:
            table, _ = reference.reference_port_tables(old_graph, random.Random("p"))
            new_labeling_rng = random.Random("p")
            labeling = PortLabeling(new_graph, rng=new_labeling_rng)
        old = reference.reference_plan_buffers(old_graph, table, port_model)
        plan = ExecutionPlan.compile(new_graph, labeling=labeling, port_model=port_model)
        new = {
            "ids": array("q", plan.ids),
            "degrees": plan.degrees,
            "offsets": plan.neighbor_offsets,
            "indices": plan.neighbor_indices,
        }
        if port_model is PortModel.KT0:
            new["ports"] = plan.port_targets
        _assert_identical(old, new, f"dilated × {port_model.value}")
        checked += 1
    return checked


def _traced_peak(setup: Callable[[], object]) -> int:
    """Peak traced Python-heap bytes of one setup run."""
    tracemalloc.start()
    try:
        setup()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak


def run_benchmark(quick: bool = False, repetitions: int = 3) -> Table:
    """Measure baseline-vs-CSR setup throughput; assert equality and gates."""
    combinations = _check_all_families()

    table = Table(
        title=f"INSTANCE-PIPELINE — CSR-native setup vs frozen dict pipeline "
              f"({'quick' if quick else 'full'} parameters)",
        headers=[
            "workload", "n", "baseline ms", "csr ms", "speedup", "identical",
        ],
    )
    workload_stats: dict[str, dict] = {}
    total_base = total_csr = 0.0
    for workload in _workloads(quick):
        base_samples: list[float] = []
        csr_samples: list[float] = []
        old = new = None
        for _ in range(repetitions):
            began = time.perf_counter()
            old = _baseline_setup(workload)
            base_samples.append(time.perf_counter() - began)
            began = time.perf_counter()
            new = _csr_setup(workload)
            csr_samples.append(time.perf_counter() - began)
        _assert_identical(old, new, workload.name)
        base_time, csr_time = min(base_samples), min(csr_samples)
        table.add_row(
            workload.name,
            workload.n,
            round(base_time * 1e3, 2),
            round(csr_time * 1e3, 2),
            f"{base_time / csr_time:.2f}x",
            True,
        )
        workload_stats[workload.name] = {
            "n": workload.n,
            "baseline": _bench_json.summarize_samples(base_samples),
            "csr": _bench_json.summarize_samples(csr_samples),
            "speedup": base_time / csr_time,
        }
        total_base += base_time
        total_csr += csr_time

    speedup = total_base / total_csr
    table.add_row("TOTAL", "-", round(total_base * 1e3, 2),
                  round(total_csr * 1e3, 2), f"{speedup:.2f}x", True)

    # Peak traced memory of the large-n setup, old vs new.
    large = _workloads(quick)[0]
    peak_old = _traced_peak(lambda: _baseline_setup(large))
    peak_new = _traced_peak(lambda: _csr_setup(large))
    table.add_note(
        f"large-n setup peak (tracemalloc): baseline {peak_old / 1e6:.1f} MB, "
        f"csr {peak_new / 1e6:.1f} MB"
    )
    table.add_note(
        f"gate: aggregate setup speedup >= {SPEEDUP_GATE}x with byte-identical "
        f"plan buffers ({combinations} family × model combinations checked) "
        "and lower large-n setup memory"
    )
    _bench_json.write_bench_json(
        "instance_pipeline",
        quick=quick,
        workloads=workload_stats,
        metrics={
            "aggregate_speedup": speedup,
            "speedup_gate": SPEEDUP_GATE,
            "family_model_combinations_checked": combinations,
            "large_n_peak_python_bytes_baseline": peak_old,
            "large_n_peak_python_bytes_csr": peak_new,
        },
    )
    assert speedup >= SPEEDUP_GATE, (
        f"CSR-pipeline setup speedup {speedup:.2f}x is below the {SPEEDUP_GATE}x gate"
    )
    assert peak_new < peak_old, (
        f"CSR pipeline peak memory {peak_new} is not below the dict "
        f"pipeline's {peak_old} on the large-n workload"
    )
    return table


def test_instance_pipeline(capsys):
    """Pytest entry point: full parameters, table to the terminal."""
    table = run_benchmark(quick=False)
    with capsys.disabled():
        print()
        print(table.render())
        print()


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller instance sizes (CI smoke; same assertions)",
    )
    args = parser.parse_args(argv)
    table = run_benchmark(quick=args.quick)
    print(table.render())
    return 0


if __name__ == "__main__":
    sys.exit(main())
