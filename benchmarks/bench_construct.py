"""Benchmark for Construct (Lemmas 6-8)."""

from __future__ import annotations


def _column(table, name):
    index = table.headers.index(name)
    return [row[index] for row in table.rows]


def test_construct_lemmas(experiment):
    """CONSTRUCT: iterations within Lemma 6's cap, few strict runs."""
    (table,) = experiment("CONSTRUCT")
    iterations = _column(table, "mean iterations")
    caps = _column(table, "2n/delta cap")
    for iters, cap in zip(iterations, caps):
        assert iters <= cap + 1, f"Lemma 6 violated: {iters} > {cap}"
    for strict in _column(table, "max strict runs"):
        assert strict <= 12, f"Lemma 7 violated: {strict} strict runs"
