"""Benchmark: all algorithms across graph families."""

from __future__ import annotations

import math


def test_shootout(experiment):
    """SHOOTOUT: every cell is populated (all algorithms succeed)."""
    (table,) = experiment("SHOOTOUT")
    for row in table.rows:
        for cell in row[3:]:
            assert not (isinstance(cell, float) and math.isnan(cell)), (
                f"algorithm failed on family {row[0]}"
            )
