"""Benchmarks for Theorem 1: scaling in n and the δ crossover."""

from __future__ import annotations


def _column(table, name):
    index = table.headers.index(name)
    return [row[index] for row in table.rows]


def test_t1_scaling(experiment):
    """T1-SCALING: rounds grow sublinearly in n at delta = n^0.75."""
    (table,) = experiment("T1-SCALING")
    assert len(table.rows) >= 3
    medians = _column(table, "median rounds")
    ns = _column(table, "n")
    # Sublinear growth: quadrupling n should not quadruple rounds.
    growth = medians[-1] / medians[0]
    n_growth = ns[-1] / ns[0]
    assert growth < n_growth, (
        f"theorem1 grew {growth:.1f}x over an n-growth of {n_growth:.1f}x"
    )


def test_t1_delta_crossover(experiment):
    """T1-DELTA: theorem1 overtakes the trivial probe at dense delta."""
    (table,) = experiment("T1-DELTA")
    ratios = _column(table, "t1/trivial")
    # The sparse end loses to the trivial probe...
    assert ratios[0] > 1.0
    # ...and the dense end wins (crossover inside the sweep).
    assert min(ratios[-3:]) < 1.0, f"no crossover observed: {ratios}"
