"""Shared machinery for the benchmark suite.

Every benchmark runs one registered experiment (quick parameters),
prints its tables to the terminal (bypassing capture so
``pytest benchmarks/ --benchmark-only`` shows them), saves markdown
copies under ``results/``, and asserts loose shape invariants — the
reproduction's analogue of "the table in the paper looks like this".

Benchmarks that track a performance trajectory additionally emit a
machine-readable ``results/BENCH_<name>.json`` through
:mod:`_bench_json` (median/p90 per workload, quick/full mode,
interpreter info); the :func:`bench_json` fixture exposes the writer
to pytest entry points, and script-mode entry points import
``_bench_json`` directly.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _bench_json import write_bench_json  # noqa: E402
from repro.experiments.workloads import run_experiment  # noqa: E402

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture
def bench_json():
    """The ``BENCH_<name>.json`` writer (see ``_bench_json``)."""
    return write_bench_json


@pytest.fixture
def experiment(benchmark, capsys):
    """Run one experiment under pytest-benchmark and show its tables."""

    def _run(key: str):
        tables = benchmark.pedantic(
            run_experiment,
            args=(key,),
            kwargs={"quick": True, "save_dir": str(RESULTS_DIR)},
            iterations=1,
            rounds=1,
        )
        with capsys.disabled():
            print()
            for table in tables:
                print(table.render())
                print()
        return tables

    return _run
