"""Shared machinery for the benchmark suite.

Every benchmark runs one registered experiment (quick parameters),
prints its tables to the terminal (bypassing capture so
``pytest benchmarks/ --benchmark-only`` shows them), saves markdown
copies under ``results/``, and asserts loose shape invariants — the
reproduction's analogue of "the table in the paper looks like this".
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.workloads import run_experiment

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture
def experiment(benchmark, capsys):
    """Run one experiment under pytest-benchmark and show its tables."""

    def _run(key: str):
        tables = benchmark.pedantic(
            run_experiment,
            args=(key,),
            kwargs={"quick": True, "save_dir": str(RESULTS_DIR)},
            iterations=1,
            rounds=1,
        )
        with capsys.disabled():
            print()
            for table in tables:
                print(table.render())
                print()
        return tables

    return _run
