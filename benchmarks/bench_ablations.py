"""Benchmarks for the design-choice ablations."""

from __future__ import annotations


def _column(table, name):
    index = table.headers.index(name)
    return [row[index] for row in table.rows]


def test_constants_ablation(experiment):
    """ABL-CONSTANTS: cost tracks the multiplier; density never breaks."""
    (table,) = experiment("ABL-CONSTANTS")
    normalized = _column(table, "rounds/multiplier")
    assert max(normalized) / min(normalized) < 3.0
    assert sum(_column(table, "dense violations")) == 0


def test_threshold_ablation(experiment):
    """ABL-THRESHOLD: extremes trade correctness against strict runs."""
    (table,) = experiment("ABL-THRESHOLD")
    violations = _column(table, "dense violations (of |N+| candidates)")
    strict = _column(table, "mean strict runs")
    # The shipped ratio (middle row) is clean.
    assert violations[1] == 0
    # A too-high threshold needs at least as many strict runs.
    assert strict[-1] >= strict[1]


def test_dwell_ablation(experiment):
    """ABL-DWELL: sweep truncation appears only below the safe slack."""
    (table,) = experiment("ABL-DWELL")
    slacks = _column(table, "dwell slack")
    overflows = _column(table, "total sweep overflows")
    by_slack = dict(zip(slacks, overflows))
    assert by_slack[1.5] == 0
    assert by_slack[1.0] == 0
    assert by_slack[0.25] > 0
