"""Benchmark for batched trial execution: plan reuse vs per-trial setup.

The PR 2 engine made a *single* execution fast; this gate protects
what PR 3 added on top — the compiled
:class:`~repro.runtime.plan.ExecutionPlan` and the batched executor
:func:`~repro.experiments.harness.run_trials` — by replaying a mixed
KT0 + KT1 many-seed workload (the shape of every statistical sweep)
through both paths:

* **baseline** — per-seed :func:`~repro.experiments.harness.run_trial`
  calls, each paying full setup (labeling + plan compilation per
  trial), exactly what the sweep engine did before execution plans;
* **planned** — one plan compiled per workload, every seed run
  through ``run_trials`` against it with a reused engine.

Two promises are asserted on every machine:

* the :class:`~repro.experiments.harness.TrialRecord` streams are
  **byte-identical** (compared as serialized JSON lines, per
  workload);
* aggregate throughput of the planned path is **≥ 2×** trials/second
  over the baseline.

Runs under pytest (``pytest benchmarks/bench_sweep_throughput.py``)
and as a script (``python benchmarks/bench_sweep_throughput.py
[--quick]``, the CI perf-smoke job).  Emits
``results/BENCH_sweep_throughput.json`` via :mod:`_bench_json`.
"""

from __future__ import annotations

import json
import random
import sys
import time
from dataclasses import dataclass
from typing import Callable

import _bench_json

from repro.experiments.harness import run_trial, run_trials
from repro.experiments.report import Table
from repro.experiments.results_io import record_to_jsonable
from repro.graphs.generators import complete_graph, random_regular_graph
from repro.graphs.graph import StaticGraph
from repro.graphs.ports import PortModel
from repro.runtime.plan import ExecutionPlan

SPEEDUP_GATE = 2.0


@dataclass(frozen=True)
class _Workload:
    """One (graph, algorithm, port model, seeds) batch replay unit."""

    name: str
    graph_factory: Callable[[], StaticGraph]
    algorithm: str
    port_model: PortModel
    seeds: tuple[int, ...]
    max_rounds: int | None


def _workloads(quick: bool) -> list[_Workload]:
    scale = 1 if quick else 4
    return [
        # Dense KT1: the trivial probe meets in O(Δ) rounds, so the
        # per-trial O(m) setup dominates the baseline — the shape of
        # every short-trial grid point on a dense family.
        _Workload(
            name="complete-192/trivial/KT1",
            graph_factory=lambda: complete_graph(192),
            algorithm="trivial",
            port_model=PortModel.KT1,
            seeds=tuple(range(40 * scale)),
            max_rounds=None,
        ),
        # Dense KT0: per-trial setup additionally re-materializes the
        # hidden port table; walkers are capped well before meeting is
        # guaranteed, so both outcomes appear in the records.
        _Workload(
            name="complete-128/random-walk/KT0",
            graph_factory=lambda: complete_graph(128),
            algorithm="random-walk",
            port_model=PortModel.KT0,
            seeds=tuple(range(30 * scale)),
            max_rounds=300,
        ),
        # Sparse KT1: long-ish capped walks where loop time, not setup,
        # carries most of the cost — keeps the aggregate honest about
        # workloads the plan helps least.
        _Workload(
            name="rr-256x8/random-walk/KT1",
            graph_factory=lambda: random_regular_graph(
                256, 8, random.Random("bench-sweep")
            ),
            algorithm="random-walk",
            port_model=PortModel.KT1,
            seeds=tuple(range(30 * scale)),
            max_rounds=400,
        ),
    ]


def _record_bytes(records) -> bytes:
    lines = [json.dumps(record_to_jsonable(r), sort_keys=True) for r in records]
    return ("\n".join(lines) + "\n").encode("utf-8")


def _baseline(graph: StaticGraph, workload: _Workload):
    """Per-seed run_trial calls: full setup every trial."""
    began = time.perf_counter()
    records = [
        run_trial(
            graph, workload.algorithm, seed,
            port_model=workload.port_model, max_rounds=workload.max_rounds,
        )
        for seed in workload.seeds
    ]
    return records, time.perf_counter() - began


def _planned(graph: StaticGraph, workload: _Workload):
    """Batched run_trials: one compiled plan, one reused engine."""
    began = time.perf_counter()
    plan = ExecutionPlan.compile(graph, port_model=workload.port_model)
    records = run_trials(
        graph, workload.algorithm, list(workload.seeds),
        plan=plan, port_model=workload.port_model, max_rounds=workload.max_rounds,
    )
    return records, time.perf_counter() - began


def run_benchmark(quick: bool = False, repetitions: int = 3) -> Table:
    """Measure baseline-vs-planned throughput; assert equality and the gate.

    Each workload is replayed ``repetitions`` times per path and the
    fastest time kept for the gate (best-of-N absorbs scheduler noise
    on loaded machines); all samples land in the emitted JSON.
    """
    table = Table(
        title=f"SWEEP-THROUGHPUT — batched plan execution vs per-trial setup "
              f"({'quick' if quick else 'full'} parameters)",
        headers=[
            "workload", "trials", "baseline t/s", "planned t/s",
            "speedup", "identical",
        ],
    )
    workload_stats: dict[str, dict] = {}
    total_base = total_plan = 0.0
    total_trials = 0
    for workload in _workloads(quick):
        graph = workload.graph_factory()
        base_samples: list[float] = []
        plan_samples: list[float] = []
        base_records = plan_records = None
        for _ in range(repetitions):
            base_records, elapsed = _baseline(graph, workload)
            base_samples.append(elapsed)
            plan_records, elapsed = _planned(graph, workload)
            plan_samples.append(elapsed)
        assert _record_bytes(base_records) == _record_bytes(plan_records), (
            f"planned records diverged from per-trial records on {workload.name}"
        )
        base_time, plan_time = min(base_samples), min(plan_samples)
        trials = len(workload.seeds)
        table.add_row(
            workload.name,
            trials,
            round(trials / base_time, 1),
            round(trials / plan_time, 1),
            f"{base_time / plan_time:.2f}x",
            True,
        )
        workload_stats[workload.name] = {
            "trials": trials,
            "baseline": _bench_json.summarize_samples(base_samples),
            "planned": _bench_json.summarize_samples(plan_samples),
            "speedup": base_time / plan_time,
        }
        total_base += base_time
        total_plan += plan_time
        total_trials += trials

    speedup = total_base / total_plan
    table.add_row(
        "TOTAL",
        total_trials,
        round(total_trials / total_base, 1),
        round(total_trials / total_plan, 1),
        f"{speedup:.2f}x",
        True,
    )
    table.add_note(
        f"gate: aggregate planned-path speedup must be >= {SPEEDUP_GATE}x "
        "(TrialRecord JSON byte-equality is asserted per workload)"
    )
    _bench_json.write_bench_json(
        "sweep_throughput",
        quick=quick,
        workloads=workload_stats,
        metrics={
            "aggregate_speedup": speedup,
            "speedup_gate": SPEEDUP_GATE,
            "trials_total": total_trials,
            "baseline_trials_per_s": total_trials / total_base,
            "planned_trials_per_s": total_trials / total_plan,
        },
    )
    assert speedup >= SPEEDUP_GATE, (
        f"planned-path speedup {speedup:.2f}x is below the {SPEEDUP_GATE}x gate"
    )
    return table


def test_sweep_throughput(capsys):
    """Pytest entry point: full parameters, table to the terminal."""
    table = run_benchmark(quick=False)
    with capsys.disabled():
        print()
        print(table.render())
        print()


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller seed counts (CI smoke; same assertions)",
    )
    args = parser.parse_args(argv)
    table = run_benchmark(quick=args.quick)
    print(table.render())
    return 0


if __name__ == "__main__":
    sys.exit(main())
