"""Benchmark for the zero-copy sweep fabric vs the pre-fabric pool path.

PR 3 made the trials themselves cheap (compiled plans, batched
execution); this gate protects what PR 4 added around them — the
distribution fabric:

* a **persistent worker pool** (one warm pool across calls instead of
  a fresh ``ProcessPoolExecutor`` per sweep) fed by a dynamic work
  queue;
* **shared-memory plan transport**: the parent compiles each
  ``(family, n, δ)`` instance once and workers attach read-only views
  instead of regenerating the graph and recompiling per process;
* **columnar record transport**: one packed ``bytes`` batch per chunk
  instead of per-record pickles.

Both paths are driven through :func:`repro.experiments.parallel.run_sweep`
on the same many-instance, ≥4-worker grid — ``fabric=False`` is the
frozen PR 3 behavior, kept precisely as this baseline:

* the **baseline** re-pays, per call, pool spawn plus one graph
  regeneration + plan compilation per worker per instance chunk;
* the **fabric** pays parent-side compilation once ever, then pure
  trial execution on warm workers.

Three promises are asserted on every machine:

* the :class:`~repro.experiments.harness.TrialRecord` streams are
  **byte-identical** (serialized JSON lines, whole grid);
* aggregate throughput of the fabric is **≥ 2×** trials/second over
  the baseline (best-of-N per path);
* the streaming mode's final summaries equal the record-holding
  mode's, with peak resident records bounded by the batch size.

Runs under pytest (``pytest benchmarks/bench_sweep_fabric.py``) and as
a script (``python benchmarks/bench_sweep_fabric.py [--quick]``, the
CI perf-smoke job).  Emits ``results/BENCH_sweep_fabric.json`` via
:mod:`_bench_json`, including peak-RSS metrics.
"""

from __future__ import annotations

import json
import sys
import time

import _bench_json

from repro.experiments.parallel import (
    SweepSpec,
    run_sweep,
    shutdown_fabric,
    clear_instance_cache,
)
from repro.experiments.report import Table
from repro.experiments.results_io import record_to_jsonable

SPEEDUP_GATE = 2.0
WORKERS = 4
REPETITIONS = 3


def _spec(quick: bool) -> SweepSpec:
    """A many-instance grid where instance setup rivals trial time.

    Generator-heavy families at sizes where one regeneration costs
    tens of trials — the shape that separates "compile once, attach
    everywhere" from "every worker rebuilds what another worker
    already built".
    """
    if quick:
        return SweepSpec(
            name="fabric-quick",
            families=("er-min-degree", "geometric"),
            ns=(128, 192, 256),
            deltas=("n^0.75",),
            algorithms=("trivial",),
            seeds=tuple(range(24)),
        )
    return SweepSpec(
        name="fabric-full",
        families=("er-min-degree", "geometric", "powerlaw"),
        ns=(128, 192, 256),
        deltas=("n^0.75",),
        algorithms=("trivial", "explore"),
        seeds=tuple(range(32)),
    )


def _record_bytes(result) -> bytes:
    lines = [
        json.dumps(record_to_jsonable(r), sort_keys=True) for r in result.records
    ]
    return ("\n".join(lines) + "\n").encode("utf-8")


def run_benchmark(quick: bool = False, repetitions: int = REPETITIONS) -> Table:
    """Measure baseline-vs-fabric sweeps; assert equality and the gate.

    Each path runs ``repetitions`` times and the fastest wall clock is
    kept for the gate (best-of-N absorbs scheduler noise; for the
    fabric it also captures the steady state the pool exists for —
    the first repetition pays one-time pool spawn and parent-side
    compilation, later ones run on warm workers and attached plans,
    exactly like consecutive sweeps in a session).  The baseline
    cannot warm up by construction: the pre-fabric path tears its
    pool down after every call.
    """
    spec = _spec(quick)
    trials = len(spec.points())

    shutdown_fabric()
    clear_instance_cache()

    baseline_samples: list[float] = []
    baseline_result = None
    for _ in range(repetitions):
        began = time.perf_counter()
        baseline_result = run_sweep(spec, workers=WORKERS, fabric=False)
        baseline_samples.append(time.perf_counter() - began)

    fabric_samples: list[float] = []
    fabric_result = None
    for _ in range(repetitions):
        began = time.perf_counter()
        fabric_result = run_sweep(spec, workers=WORKERS)
        fabric_samples.append(time.perf_counter() - began)

    assert _record_bytes(baseline_result) == _record_bytes(fabric_result), (
        "fabric records diverged from the pre-fabric path"
    )

    # Streaming mode on the warm fabric: identical summaries, bounded
    # resident records.
    streamed = run_sweep(spec, workers=WORKERS, stream=True)
    assert (
        streamed.summary_table().rows == fabric_result.summary_table().rows
    ), "streaming summaries diverged from the record-holding path"
    assert streamed.max_resident < trials, (
        "streaming mode held the whole grid resident"
    )

    shutdown_fabric()  # reap workers so RUSAGE_CHILDREN sees their peak

    baseline_time = min(baseline_samples)
    fabric_time = min(fabric_samples)
    speedup = baseline_time / fabric_time

    table = Table(
        title=f"SWEEP-FABRIC — persistent pool + shared plans + columnar "
              f"transport vs per-call pool ({'quick' if quick else 'full'} "
              f"parameters)",
        headers=[
            "path", "trials", "best (s)", "trials/s", "speedup", "identical",
        ],
    )
    table.add_row(
        "pre-fabric (PR 3)", trials, round(baseline_time, 3),
        round(trials / baseline_time, 1), "1.00x", True,
    )
    table.add_row(
        "fabric", trials, round(fabric_time, 3),
        round(trials / fabric_time, 1), f"{speedup:.2f}x", True,
    )
    table.add_note(
        f"gate: fabric speedup must be >= {SPEEDUP_GATE}x on a "
        f"{WORKERS}-worker, {trials}-trial, "
        f"{len(spec.families) * len(spec.ns)}-instance grid "
        "(TrialRecord JSON byte-equality asserted on the whole grid)"
    )
    table.add_note(
        f"streaming mode: peak {streamed.max_resident} resident record(s) "
        f"of {trials}, summaries identical"
    )

    _bench_json.write_bench_json(
        "sweep_fabric",
        quick=quick,
        workloads={
            "grid": {
                "trials": trials,
                "instances": len(spec.families) * len(spec.ns),
                "baseline": _bench_json.summarize_samples(baseline_samples),
                "fabric": _bench_json.summarize_samples(fabric_samples),
                "speedup": speedup,
            },
        },
        metrics={
            "aggregate_speedup": speedup,
            "speedup_gate": SPEEDUP_GATE,
            "workers": WORKERS,
            "trials_total": trials,
            "baseline_trials_per_s": trials / baseline_time,
            "fabric_trials_per_s": trials / fabric_time,
            "stream_max_resident_records": streamed.max_resident,
        },
    )
    assert speedup >= SPEEDUP_GATE, (
        f"fabric speedup {speedup:.2f}x is below the {SPEEDUP_GATE}x gate"
    )
    return table


def test_sweep_fabric(capsys):
    """Pytest entry point: full parameters, table to the terminal."""
    table = run_benchmark(quick=False)
    with capsys.disabled():
        print()
        print(table.render())
        print()


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller grid (CI smoke; same assertions)",
    )
    args = parser.parse_args(argv)
    table = run_benchmark(quick=args.quick)
    print(table.render())
    return 0


if __name__ == "__main__":
    sys.exit(main())
