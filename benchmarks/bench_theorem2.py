"""Benchmarks for Theorem 2: the phase mechanism and the full algorithm."""

from __future__ import annotations


def _column(table, name):
    index = table.headers.index(name)
    return [row[index] for row in table.rows]


def test_t2_phase_mechanism(experiment):
    """T2-PHASES: the oracle-isolated schedule meets in every trial."""
    (table,) = experiment("T2-PHASES")
    for met in _column(table, "met"):
        done, total = met.split("/")
        assert done == total, f"phase mechanism missed meetings: {met}"


def test_t2_end_to_end(experiment):
    """T2-FULL: the full algorithm meets; early collisions documented."""
    (table,) = experiment("T2-FULL")
    for met in _column(table, "met"):
        done, total = met.split("/")
        assert done == total
