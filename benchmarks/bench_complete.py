"""Benchmark for complete graphs: Anderson-Weber [6] vs theorem1."""

from __future__ import annotations


def _column(table, name):
    index = table.headers.index(name)
    return [row[index] for row in table.rows]


def test_complete_graph_comparison(experiment):
    """COMPLETE-AW: AW ~ sqrt(n); the trivial probe is Theta(n)."""
    (table,) = experiment("COMPLETE-AW")
    aw_norm = _column(table, "AW/sqrt(n)")
    # sqrt-n scaling: normalized values stay within a small band.
    assert max(aw_norm) / min(aw_norm) < 5.0, f"AW not ~sqrt(n): {aw_norm}"
    # AW beats the trivial probe at every size.
    aw = _column(table, "AW mean rounds")
    trivial = _column(table, "trivial mean")
    assert all(a < t for a, t in zip(aw, trivial))
