"""Benchmark for the lockstep trial engine: batched trials/s.

PR 5 made instance *setup* fast; this gate protects the layer that
makes the *trials themselves* fast — the lockstep executor
(:mod:`repro.runtime.lockstep`): a struct-of-arrays batch runner that
advances every seed of a ``run_trials`` call in lockstep over one
compiled :class:`~repro.runtime.plan.ExecutionPlan`, replacing the
per-round interpreter loop with per-chunk choice-tape kernels while
drawing the **same random numbers in the same order** as the serial
engine.

Both paths replay identical multi-seed random-walk workloads:

* **baseline** — :func:`repro.runtime.reference.reference_run_trials`,
  the frozen pre-lockstep batched executor (PR 3's engine-reset loop:
  one compiled plan, one reused engine, every round interpreted);
* **lockstep** — the wired :func:`repro.experiments.harness.run_trials`
  with ``REPRO_LOCKSTEP=1``, exactly what sweeps and fabric workers
  run for eligible algorithm × port-model batches.

Two promises are asserted on every machine:

* every workload's whole batch of :class:`TrialRecord`\\ s is
  **byte-identical** between the paths (JSON-lines serialization, the
  sweep export format) — meeting rounds, vertices, move counts, seeds;
* aggregate trial throughput of the lockstep path is **≥ 5×** the
  frozen baseline over random-walk-heavy multi-seed workloads.

Runs under pytest (``pytest benchmarks/bench_lockstep.py``) and as a
script (``python benchmarks/bench_lockstep.py [--quick]``, the CI
perf-smoke job).  Emits ``results/BENCH_lockstep.json`` via
:mod:`_bench_json`.
"""

from __future__ import annotations

import json
import os
import random
import sys
import time
from dataclasses import dataclass

import _bench_json

from repro.experiments.harness import run_trials
from repro.experiments.parallel import GRAPH_FAMILIES
from repro.experiments.report import Table
from repro.experiments.results_io import record_to_jsonable
from repro.graphs.ports import PortModel
from repro.runtime.lockstep import LOCKSTEP_ENV, lockstep_supported
from repro.runtime.plan import ExecutionPlan
from repro.runtime.reference import reference_run_trials

SPEEDUP_GATE = 5.0


@dataclass(frozen=True)
class _Workload:
    """One timed batch: family × size × degree × seed count × budget."""

    name: str
    family: str
    n: int
    delta: int
    seeds: int
    max_rounds: int


def _workloads(quick: bool) -> list[_Workload]:
    if quick:
        # Same shape, smaller: the ratio is per-round cost, which does
        # not depend on n while the neighbor table stays cache-resident.
        return [
            _Workload("rr-1600x7/s16", "regular", 1600, 7, 16, 2_500),
            _Workload("rr-2400x7/s16", "regular", 2400, 7, 16, 2_500),
        ]
    return [
        # Sparse random-regular graphs: long meeting times (many rounds
        # per trial, the sweep regime the lockstep engine exists for)
        # with a neighbor table small enough that both paths measure
        # executor overhead, not cache misses.
        _Workload("rr-2000x7/s32", "regular", 2000, 7, 32, 2_500),
        _Workload("rr-3000x7/s32", "regular", 3000, 7, 32, 2_500),
    ]


def _build(workload: _Workload):
    """Graph + precompiled plan, shared verbatim by both paths."""
    rng = random.Random(f"lockstep:{workload.name}")
    graph = GRAPH_FAMILIES[workload.family](workload.n, workload.delta, rng)
    plan = ExecutionPlan.compile(graph)
    return graph, plan


def _batch_bytes(records) -> bytes:
    """The sweep export serialization of a whole batch (JSON lines)."""
    return b"\n".join(
        json.dumps(record_to_jsonable(record), sort_keys=True).encode("ascii")
        for record in records
    )


def _run_baseline(graph, plan, workload: _Workload):
    return reference_run_trials(
        graph, "random-walk", range(workload.seeds),
        plan=plan, max_rounds=workload.max_rounds, check_instance=False,
    )


def _run_lockstep(graph, plan, workload: _Workload):
    previous = os.environ.get(LOCKSTEP_ENV)
    os.environ[LOCKSTEP_ENV] = "1"
    try:
        return run_trials(
            graph, "random-walk", range(workload.seeds),
            plan=plan, max_rounds=workload.max_rounds, check_instance=False,
        )
    finally:
        if previous is None:
            del os.environ[LOCKSTEP_ENV]
        else:
            os.environ[LOCKSTEP_ENV] = previous


def run_benchmark(quick: bool = False, repetitions: int = 3) -> Table:
    """Measure serial-vs-lockstep trial throughput; assert equality and gate."""
    assert lockstep_supported("random-walk", PortModel.KT1)

    table = Table(
        title=f"LOCKSTEP — batched trials vs the serial engine loop "
              f"({'quick' if quick else 'full'} parameters)",
        headers=[
            "workload", "trials", "baseline ms", "lockstep ms", "speedup",
            "identical",
        ],
    )
    workload_stats: dict[str, dict] = {}
    total_base = total_fast = 0.0
    for workload in _workloads(quick):
        graph, plan = _build(workload)
        base_samples: list[float] = []
        fast_samples: list[float] = []
        old = new = None
        for _ in range(repetitions):
            began = time.perf_counter()
            old = _run_baseline(graph, plan, workload)
            base_samples.append(time.perf_counter() - began)
            began = time.perf_counter()
            new = _run_lockstep(graph, plan, workload)
            fast_samples.append(time.perf_counter() - began)
        assert _batch_bytes(old) == _batch_bytes(new), (
            f"lockstep records diverged from the serial engine on {workload.name}"
        )
        base_time, fast_time = min(base_samples), min(fast_samples)
        table.add_row(
            workload.name,
            workload.seeds,
            round(base_time * 1e3, 2),
            round(fast_time * 1e3, 2),
            f"{base_time / fast_time:.2f}x",
            True,
        )
        workload_stats[workload.name] = {
            "n": workload.n,
            "trials": workload.seeds,
            "baseline": _bench_json.summarize_samples(base_samples),
            "lockstep": _bench_json.summarize_samples(fast_samples),
            "speedup": base_time / fast_time,
        }
        total_base += base_time
        total_fast += fast_time

    speedup = total_base / total_fast
    table.add_row("TOTAL", "-", round(total_base * 1e3, 2),
                  round(total_fast * 1e3, 2), f"{speedup:.2f}x", True)
    table.add_note(
        f"gate: aggregate trial throughput >= {SPEEDUP_GATE}x the frozen "
        "serial executor with byte-identical batch records on every workload"
    )
    _bench_json.write_bench_json(
        "lockstep",
        quick=quick,
        workloads=workload_stats,
        metrics={
            "aggregate_speedup": speedup,
            "speedup_gate": SPEEDUP_GATE,
        },
    )
    assert speedup >= SPEEDUP_GATE, (
        f"lockstep speedup {speedup:.2f}x is below the {SPEEDUP_GATE}x gate"
    )
    return table


def test_lockstep(capsys):
    """Pytest entry point: full parameters, table to the terminal."""
    table = run_benchmark(quick=False)
    with capsys.disabled():
        print()
        print(table.render())
        print()


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller instance sizes (CI smoke; same assertions)",
    )
    args = parser.parse_args(argv)
    table = run_benchmark(quick=args.quick)
    print(table.render())
    return 0


if __name__ == "__main__":
    sys.exit(main())
