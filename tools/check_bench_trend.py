#!/usr/bin/env python3
"""Benchmark-trajectory trend check (stdlib only; CI perf-smoke job).

Compares fresh ``results/BENCH_*.json`` files against a directory of
committed baselines and fails (exit 1) when any **gated** benchmark
regressed by more than the threshold on its *median-based speedup*.

Why speedups and not raw seconds: CI machines differ wildly from the
machines that produced the committed baselines, but each benchmark
measures its old and new code paths **in the same process on the same
machine**, so the ratio of their median timings transfers across
hardware.  For every workload that records two timed paths (e.g.
``baseline``/``planned``), the check recomputes

    median_speedup = median_s(baseline path) / median_s(new path)

from both files and flags ``fresh < committed * (1 - threshold)``
(default threshold 25%).  The ``aggregate_speedup`` scalar each gated
benchmark stamps into its ``metrics`` is compared the same way.

Files whose ``mode`` differs between baseline and fresh (quick vs
full) are skipped with a warning — quick and full parameters measure
different ratios, so comparing them would flag phantom regressions.
Two further guards against cross-machine flakes: workloads whose
committed speedup is near parity (< 1.25x — kept in benchmarks for
honesty, not as gates) are skipped outright, and multi-process
benchmarks (whose ratios depend on the runner's core count) use a
looser 60% threshold so only catastrophic regressions fail.

The committed baselines live in ``benchmarks/baselines/`` (quick
mode; ``results/`` itself is gitignored).  Usage — after running the
gated benchmarks::

    python tools/check_bench_trend.py

One global threshold rarely fits every benchmark: a contended CI
runner perturbs a socket-bound fleet benchmark far more than a pure
in-process microbenchmark.  ``--threshold-for NAME=FRACTION``
(repeatable) overrides the threshold for one benchmark by name::

    python tools/check_bench_trend.py \\
        --threshold 0.25 --threshold-for sweep_service=0.35

Overrides compose with the other guards — a benchmark listed in
``MULTIPROCESS_BENCHMARKS`` still gets *at least* the looser
multi-process threshold, and near-parity workloads stay skipped —
and an override naming an unknown benchmark is an argument error, so
a typo cannot silently un-gate anything.

``docs/performance.md`` documents the trajectory files themselves;
``benchmarks/baselines/README.md`` says how to refresh the baselines
when a PR intentionally shifts performance.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Benchmarks with a hard speedup gate; only these can fail the check.
GATED_BENCHMARKS = (
    "engine",
    "sweep_throughput",
    "sweep_fabric",
    "instance_pipeline",
    "lockstep",
    "warehouse",
    "sweep_service",
)

#: Workload sub-dict names that denote the *slow* (reference) path.
BASELINE_PATH_NAMES = frozenset({"baseline", "seed", "serial"})

#: Benchmarks whose speedup depends on worker processes: their ratios
#: vary with the runner's core count and process-spawn cost, not just
#: the code, so only a catastrophic regression is actionable.
MULTIPROCESS_BENCHMARKS = frozenset({"sweep_fabric", "sweep_service"})
MULTIPROCESS_THRESHOLD = 0.60

#: Workloads whose committed speedup is near parity carry no headroom
#: and no signal — they exist to keep the benchmark's aggregate honest,
#: not to gate.  Anything below this baseline speedup is skipped.
PARITY_FLOOR = 1.25


def load_bench(directory: Path, name: str) -> dict | None:
    path = directory / f"BENCH_{name}.json"
    if not path.exists():
        return None
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as error:
        print(f"warning: cannot read {path}: {error}", file=sys.stderr)
        return None


def median_speedups(payload: dict) -> dict[str, float]:
    """Per-workload median-based speedups, plus the aggregate metric."""
    out: dict[str, float] = {}
    for workload, stats in payload.get("workloads", {}).items():
        if not isinstance(stats, dict):
            continue
        timed = {
            key: value
            for key, value in stats.items()
            if isinstance(value, dict) and "median_s" in value
        }
        base = next((k for k in timed if k in BASELINE_PATH_NAMES), None)
        if base is None or len(timed) != 2:
            continue
        fast = next(k for k in timed if k != base)
        fast_median = timed[fast]["median_s"]
        if fast_median > 0:
            out[workload] = timed[base]["median_s"] / fast_median
    aggregate = payload.get("metrics", {}).get("aggregate_speedup")
    if isinstance(aggregate, (int, float)):
        out["<aggregate>"] = float(aggregate)
    return out


def compare(
    name: str, baseline: dict, fresh: dict, threshold: float
) -> tuple[list[str], list[str]]:
    """Returns (report lines, regression lines) for one benchmark."""
    lines: list[str] = []
    regressions: list[str] = []
    if baseline.get("mode") != fresh.get("mode"):
        lines.append(
            f"  {name}: skipped (baseline mode {baseline.get('mode')!r} != "
            f"fresh mode {fresh.get('mode')!r})"
        )
        return lines, regressions
    if name in MULTIPROCESS_BENCHMARKS:
        threshold = max(threshold, MULTIPROCESS_THRESHOLD)
    old = median_speedups(baseline)
    new = median_speedups(fresh)
    for key in sorted(old):
        if key not in new:
            lines.append(f"  {name} / {key}: missing from fresh results")
            continue
        if old[key] < PARITY_FLOOR:
            lines.append(
                f"  {name} / {key}: baseline {old[key]:.2f}x is near parity "
                "— no headroom, skipped"
            )
            continue
        floor = old[key] * (1.0 - threshold)
        verdict = "ok" if new[key] >= floor else "REGRESSED"
        lines.append(
            f"  {name} / {key}: {old[key]:.2f}x -> {new[key]:.2f}x "
            f"(floor {floor:.2f}x) {verdict}"
        )
        if new[key] < floor:
            regressions.append(
                f"{name} / {key}: median speedup fell {old[key]:.2f}x -> "
                f"{new[key]:.2f}x (more than {threshold:.0%})"
            )
    return lines, regressions


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    default_baseline = Path(__file__).resolve().parent.parent / "benchmarks" / "baselines"
    parser.add_argument(
        "--baseline", default=default_baseline, type=Path,
        help="directory holding the committed BENCH_*.json baselines "
             "(default: benchmarks/baselines/)",
    )
    parser.add_argument(
        "--fresh", default="results", type=Path,
        help="directory holding the freshly produced BENCH_*.json files",
    )
    parser.add_argument(
        "--threshold", default=0.25, type=float,
        help="maximum tolerated median-speedup regression (default 0.25)",
    )
    parser.add_argument(
        "--threshold-for", action="append", default=[], metavar="NAME=FRACTION",
        help="per-benchmark threshold override, repeatable "
             "(e.g. --threshold-for sweep_service=0.35)",
    )
    args = parser.parse_args(argv)

    overrides: dict[str, float] = {}
    for item in args.threshold_for:
        name, sep, value = item.partition("=")
        if not sep or name not in GATED_BENCHMARKS:
            known = ", ".join(GATED_BENCHMARKS)
            parser.error(
                f"--threshold-for wants NAME=FRACTION with NAME one of "
                f"{known}; got {item!r}"
            )
        try:
            overrides[name] = float(value)
        except ValueError:
            parser.error(f"--threshold-for {item!r}: {value!r} is not a number")

    if not args.baseline.is_dir():
        print(f"baseline directory {args.baseline} does not exist", file=sys.stderr)
        return 2

    all_regressions: list[str] = []
    compared = 0
    for name in GATED_BENCHMARKS:
        baseline = load_bench(args.baseline, name)
        fresh = load_bench(args.fresh, name)
        if baseline is None or fresh is None:
            side = "baseline" if baseline is None else "fresh"
            print(f"  {name}: no {side} file — skipped")
            continue
        lines, regressions = compare(
            name, baseline, fresh, overrides.get(name, args.threshold)
        )
        print("\n".join(lines))
        all_regressions.extend(regressions)
        compared += 1

    if all_regressions:
        print(f"\n{len(all_regressions)} benchmark regression(s):", file=sys.stderr)
        for regression in all_regressions:
            print(f"  {regression}", file=sys.stderr)
        return 1
    print(f"checked {compared} gated benchmark(s): OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
