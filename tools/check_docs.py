#!/usr/bin/env python3
"""Documentation cross-link checker (stdlib only; CI docs job).

Scans every markdown file at the repository root and under ``docs/``
for inline links ``[text](target)`` and fails (exit 1) when a
relative target does not exist, or when a ``#fragment`` pointing into
a markdown file names a heading that is not there (GitHub-style
anchor slugs).  External ``http(s)://`` and ``mailto:`` targets are
ignored — CI must not depend on the network.

Usage: ``python tools/check_docs.py`` from anywhere inside the repo.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

LINK = re.compile(r"(?<!!)\[[^\]]*\]\(([^)\s]+)\)")
HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
FENCE = re.compile(r"```.*?```", re.DOTALL)


def repo_root() -> Path:
    here = Path(__file__).resolve().parent
    for candidate in (here, *here.parents):
        if (candidate / ".git").exists() or (candidate / "ROADMAP.md").exists():
            return candidate
    return here.parent


def anchor_slug(heading: str) -> str:
    """GitHub's markdown anchor slug for a heading line."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_in(path: Path) -> set[str]:
    content = FENCE.sub("", path.read_text(encoding="utf-8"))
    return {anchor_slug(m.group(1)) for m in HEADING.finditer(content)}


def check_file(path: Path) -> list[str]:
    problems: list[str] = []
    content = FENCE.sub("", path.read_text(encoding="utf-8"))
    for match in LINK.finditer(content):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        base, _, fragment = target.partition("#")
        resolved = path if not base else (path.parent / base).resolve()
        if base and not resolved.exists():
            problems.append(f"{path}: broken link -> {target}")
            continue
        if fragment and resolved.suffix == ".md":
            if fragment not in anchors_in(resolved):
                problems.append(f"{path}: broken anchor -> {target}")
    return problems


def main() -> int:
    root = repo_root()
    files = sorted(root.glob("*.md")) + sorted((root / "docs").glob("*.md"))
    problems: list[str] = []
    for path in files:
        problems.extend(check_file(path))
    for problem in problems:
        print(problem, file=sys.stderr)
    print(f"checked {len(files)} markdown files: "
          f"{'OK' if not problems else f'{len(problems)} broken link(s)'}")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
